"""Smoke tests: the runnable examples must actually run.

Only the fast examples are executed end-to-end (the crawl/classification
studies take minutes by design); the rest are import-checked so a broken
API surface still fails the suite.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_module(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert "quickstart.py" in ALL_EXAMPLES
        assert len(ALL_EXAMPLES) >= 3  # the deliverable floor

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_examples_importable_with_main(self, name):
        module = load_module(name)
        assert callable(getattr(module, "main", None)), f"{name} lacks main()"
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", ["quickstart.py", "node_roles.py"])
    def test_fast_examples_run(self, name):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()
