"""Tests for Theorem 2: the expanded chain's stationary distribution."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.expanded_chain import (
    enumerate_windows,
    expanded_transition_matrix,
    nominal_degree,
    stationary_weight,
    theorem2_distribution,
)
from repro.graphs.generators import cycle_graph, lollipop_graph
from repro.relgraph import relationship_graph


class TestStationaryWeight:
    def test_l1_is_degree(self):
        assert stationary_weight([7]) == 7.0

    def test_l2_is_one(self):
        assert stationary_weight([3, 9]) == 1.0

    def test_l3_inverse_middle(self):
        assert math.isclose(stationary_weight([2, 4, 7]), 1 / 4)

    def test_l4_product(self):
        assert math.isclose(stationary_weight([2, 4, 5, 7]), 1 / 20)

    def test_paper_figure1_example(self, figure1_graph):
        """§3.2 worked example: walking on G(2) of Figure 1 through states
        (1,2) -> (1,3) -> (3,4) with degrees 3, 4, 3 gives
        pi_e = 1/16 * 1/4 = 1/64."""
        relgraph, states = relationship_graph(figure1_graph, 2)
        degrees = [3, 4, 3]
        index = {s: i for i, s in enumerate(states)}
        # Paper nodes 1..4 are our 0..3: states (0,1), (0,2), (2,3).
        assert [relgraph.degree(index[s]) for s in [(0, 1), (0, 2), (2, 3)]] == degrees
        pi_e = stationary_weight(degrees) / (2 * relgraph.num_edges)
        assert math.isclose(pi_e, 1 / 64)

    def test_zero_degree_rejected(self):
        with pytest.raises(ValueError):
            stationary_weight([2, 0, 3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stationary_weight([])

    def test_nominal_degree(self):
        assert nominal_degree(5) == 4
        assert nominal_degree(1) == 1


class TestTheorem2:
    @pytest.mark.parametrize("l", [1, 2, 3])
    def test_formula_is_stationary_on_figure1_g2(self, figure1_graph, l):
        """The closed form of Theorem 2 must be the stationary distribution
        of the explicitly-built expanded chain."""
        relgraph, _ = relationship_graph(figure1_graph, 2)
        matrix, windows = expanded_transition_matrix(relgraph, l)
        pi = theorem2_distribution(relgraph, windows)
        assert math.isclose(pi.sum(), 1.0, rel_tol=1e-9)
        assert np.allclose(pi @ matrix, pi, atol=1e-12)

    @pytest.mark.parametrize("l", [2, 3])
    def test_formula_is_stationary_on_g1(self, figure1_graph, l):
        matrix, windows = expanded_transition_matrix(figure1_graph, l)
        pi = theorem2_distribution(figure1_graph, windows)
        assert np.allclose(pi @ matrix, pi, atol=1e-12)

    def test_formula_on_asymmetric_graph(self):
        """Lollipop graphs have widely varying degrees — a stronger check
        than the symmetric classics."""
        g = lollipop_graph(4, 2)
        matrix, windows = expanded_transition_matrix(g, 3)
        pi = theorem2_distribution(g, windows)
        assert np.allclose(pi @ matrix, pi, atol=1e-12)

    def test_uniqueness_via_power_iteration(self, figure1_graph):
        """Power iteration from an arbitrary start converges to the
        Theorem 2 distribution (irreducibility / uniqueness)."""
        matrix, windows = expanded_transition_matrix(figure1_graph, 3)
        pi = theorem2_distribution(figure1_graph, windows)
        dist = np.full(len(windows), 1.0 / len(windows))
        for _ in range(400):
            dist = dist @ matrix
        # Aperiodic? average two consecutive iterates to kill period-2.
        dist = 0.5 * (dist + dist @ matrix)
        assert np.allclose(dist, pi, atol=1e-6)


class TestEnumerateWindows:
    def test_window_count_l2_is_directed_edges(self, figure1_graph):
        windows = enumerate_windows(figure1_graph, 2)
        assert len(windows) == 2 * figure1_graph.num_edges

    def test_window_count_l3_matches_wedge_walks(self):
        g = cycle_graph(5)
        # On a cycle every node has degree 2: number of length-3 walks is
        # n * 2 * 2.
        assert len(enumerate_windows(g, 3)) == 5 * 4

    def test_windows_are_walks(self, figure1_graph):
        for window in enumerate_windows(figure1_graph, 3):
            for a, b in zip(window, window[1:]):
                assert figure1_graph.has_edge(a, b)
