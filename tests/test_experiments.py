"""Tests for the parallel experiment engine (repro.experiments)."""

from __future__ import annotations

import dataclasses
import json
import random

import numpy as np
import pytest

from repro.core import MethodSpec, run_with_checkpoints
from repro.core.checkpoints import checkpoint_session
from repro.core.session import EstimationConfig
from repro.estimators import get as get_estimator
from repro.evaluation import nrmse_table, random_start_nodes, run_trials
from repro.experiments import (
    ExperimentSpec,
    canonical_line,
    get_suite,
    resolve_graph,
    run_experiment,
    seed_stream,
    suite_names,
    suite_specs,
    summary_path,
    trials_path,
)
from repro.graphs import barabasi_albert

SPEC = ExperimentSpec(
    name="unit",
    graph="ba:60:3:2",
    k=3,
    methods=("SRW1", "SRW1CSSNB"),
    budget=300,
    trials=4,
    base_seed=9,
)


class TestSeedStream:
    def test_sequential_is_base_plus_t(self):
        assert seed_stream(5, 4, "sequential") == [5, 6, 7, 8]

    def test_spawn_deterministic(self):
        assert seed_stream(5, 6, "spawn") == seed_stream(5, 6, "spawn")

    def test_spawn_distinct_seeds(self):
        seeds = seed_stream(0, 32, "spawn")
        assert len(set(seeds)) == 32

    def test_spawn_prefix_stable(self):
        """Trial t's seed does not depend on how many trials follow it —
        the property that makes resume and parallel fan-out consistent."""
        assert seed_stream(3, 8, "spawn")[:4] == seed_stream(3, 4, "spawn")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="seed strategy"):
            seed_stream(0, 2, "quantum")


class TestExperimentSpec:
    def test_round_trip(self):
        rebuilt = ExperimentSpec.from_dict(SPEC.to_dict())
        assert rebuilt == SPEC

    def test_config_hash_stable_and_label_independent(self):
        relabeled = dataclasses.replace(
            SPEC, name="other", description="x", target="wedge"
        )
        assert relabeled.config_hash() == SPEC.config_hash()

    def test_config_hash_tracks_results_fields(self):
        assert (
            dataclasses.replace(SPEC, budget=301).config_hash()
            != SPEC.config_hash()
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one method"):
            dataclasses.replace(SPEC, methods=())
        with pytest.raises(ValueError, match="starts"):
            dataclasses.replace(SPEC, starts="somewhere")
        with pytest.raises(ValueError, match="trials"):
            dataclasses.replace(SPEC, trials=0)
        with pytest.raises(ValueError, match="basename"):
            dataclasses.replace(SPEC, name="a/b")

    def test_execution_shape_validation(self):
        with pytest.raises(ValueError, match="chains"):
            dataclasses.replace(SPEC, chains=0)
        with pytest.raises(ValueError, match="one transition per chain"):
            dataclasses.replace(SPEC, chains=SPEC.budget + 1)
        with pytest.raises(ValueError, match="unknown backend"):
            dataclasses.replace(SPEC, backend="sparse")
        # Chainless baselines fail at spec construction, not mid-sweep
        # inside a worker process.
        with pytest.raises(ValueError, match="wedge_mhrw"):
            dataclasses.replace(SPEC, methods=("SRW1", "wedge_mhrw"), chains=8)
        assert dataclasses.replace(SPEC, methods=("SRW1", "wedge_mhrw")).chains == 1

    def test_execution_shape_hash_compatibility(self):
        """Default chains/backend leave pre-existing fingerprints alone
        (checked-in trajectory artifacts stay valid); non-default values
        change results and therefore the hash."""
        assert (
            dataclasses.replace(SPEC, chains=1, backend=None).config_hash()
            == SPEC.config_hash()
        )
        assert dataclasses.replace(SPEC, chains=8).config_hash() != SPEC.config_hash()
        assert (
            dataclasses.replace(SPEC, backend="csr").config_hash()
            != SPEC.config_hash()
        )

    def test_batched_trials_carry_chains(self):
        """chains/backend ride the task into every trial's estimate."""
        spec = dataclasses.replace(
            SPEC, name="batched", chains=4, backend="csr", methods=("SRW2CSS",), k=4
        )
        result = run_experiment(spec, jobs=1)
        for estimate in result.method_estimates("SRW2CSS"):
            assert estimate.chains == 4

    def test_fixed_starts(self):
        spec = dataclasses.replace(SPEC, starts="fixed:7")
        graph = resolve_graph(spec.graph)
        assert spec.start_nodes(graph) == [7, 7, 7, 7]

    def test_resolve_graph_sources(self):
        ba = resolve_graph("ba:40:2:1")
        assert ba.num_nodes == 40
        assert resolve_graph("dataset:karate").num_nodes == 34
        assert resolve_graph("karate").num_nodes == 34  # bare-name shorthand
        with pytest.raises(ValueError, match="unknown graph source"):
            resolve_graph("zz:1")
        with pytest.raises(ValueError, match="malformed BA"):
            resolve_graph("ba:40:2")

    def test_resolve_file_source(self, tmp_path):
        """file:path ingests once (LCC by default), caches the mmap
        layout beside the file, and :raw opts out of the LCC cut."""
        from repro.graphs import Graph, MmapCSRGraph, write_edge_list

        ba = barabasi_albert(30, 2, seed=4)
        graph = Graph(32, list(ba.edges()) + [(30, 31)])
        path = tmp_path / "snap.txt"
        write_edge_list(graph, path)

        lcc = resolve_graph(f"file:{path}")
        assert isinstance(lcc, MmapCSRGraph)
        assert lcc.num_nodes == 30
        assert (tmp_path / "snap.txt.mmap").is_dir()

        raw = resolve_graph(f"file:{path}:raw")
        assert raw.num_nodes == 32
        assert (tmp_path / "snap.txt.mmap-raw").is_dir()

        # A saved layout directory resolves directly, no ingest.
        direct = resolve_graph(f"file:{tmp_path / 'snap.txt.mmap'}")
        assert direct == lcc

        with pytest.raises(ValueError, match="malformed file graph source"):
            resolve_graph("file:")
        with pytest.raises(ValueError, match="does not exist"):
            resolve_graph(f"file:{tmp_path / 'missing.txt'}")


class TestDeterminism:
    def test_parallel_bit_identical_to_serial(self):
        serial = run_experiment(SPEC, jobs=1)
        parallel = run_experiment(SPEC, jobs=4)
        for method in SPEC.methods:
            assert np.array_equal(
                serial.estimates(method), parallel.estimates(method)
            ), method
        # Full rows too (seeds, samples, sums), not just concentrations.
        for a, b in zip(serial.rows, parallel.rows):
            assert canonical_line(a) == canonical_line(b)

    def test_run_trials_jobs_bit_identical(self, karate):
        starts = random_start_nodes(karate, 5, seed=3)
        one = run_trials(
            karate, 3, "SRW1CSSNB", 400, 5, base_seed=3, start_nodes=starts
        )
        four = run_trials(
            karate, 3, "SRW1CSSNB", 400, 5, base_seed=3, start_nodes=starts,
            jobs=4,
        )
        assert np.array_equal(one.estimates, four.estimates)

    def test_run_trials_matches_direct_sessions(self, karate):
        """The engine wrapper reproduces the historical serial loop:
        seed ``base_seed + t``, one fresh session per trial."""
        summary = run_trials(karate, 3, "SRW1", 300, 3, base_seed=11)
        estimator = get_estimator("SRW1")
        for t in range(3):
            config = EstimationConfig(
                method="SRW1", k=3, budget=300, seed=11 + t, seed_node=0
            )
            expected = estimator.prepare(karate, config).result()
            assert np.array_equal(summary.estimates[t], expected.concentrations)

    def test_nrmse_table_jobs_identical(self, karate):
        kwargs = dict(steps=400, trials=4, target_index=1, base_seed=2)
        assert nrmse_table(karate, 3, ["SRW1"], **kwargs) == nrmse_table(
            karate, 3, ["SRW1"], jobs=2, **kwargs
        )


class TestArtifactsAndResume:
    def test_artifacts_written(self, tmp_path):
        result = run_experiment(SPEC, jobs=1, out_dir=tmp_path)
        rows = [
            json.loads(line)
            for line in trials_path(tmp_path, SPEC).read_text().splitlines()
        ]
        assert len(rows) == len(SPEC.methods) * SPEC.trials
        assert all(row["config_hash"] == SPEC.config_hash() for row in rows)
        summary = json.loads(summary_path(tmp_path, SPEC).read_text())
        assert summary["name"] == "unit"
        assert summary["config_hash"] == SPEC.config_hash()
        assert set(summary["nrmse"]) == set(SPEC.methods)
        assert summary["total_trials"] == len(result.rows)
        assert summary["total_steps"] == SPEC.budget * len(result.rows)

    def test_resume_reproduces_uninterrupted_run_byte_for_byte(self, tmp_path):
        full_dir = tmp_path / "full"
        cut_dir = tmp_path / "cut"
        run_experiment(SPEC, jobs=1, out_dir=full_dir)

        # Simulate a sweep killed after three trials: truncate the JSONL.
        cut_dir.mkdir()
        full_lines = trials_path(full_dir, SPEC).read_text().splitlines()
        trials_path(cut_dir, SPEC).write_text("\n".join(full_lines[:3]) + "\n")

        resumed = run_experiment(SPEC, jobs=2, out_dir=cut_dir, resume=True)
        assert resumed.resumed_trials == 3

        def canonical(lines):
            return sorted(canonical_line(json.loads(line)) for line in lines)

        resumed_lines = trials_path(cut_dir, SPEC).read_text().splitlines()
        assert len(resumed_lines) == len(full_lines)
        assert canonical(resumed_lines) == canonical(full_lines)

    def test_resume_tolerates_half_written_final_line(self, tmp_path):
        """A sweep killed mid-write leaves a truncated last JSONL line;
        resume drops it, re-runs that trial, and still recovers fully."""
        full_dir = tmp_path / "full"
        cut_dir = tmp_path / "cut"
        run_experiment(SPEC, jobs=1, out_dir=full_dir)
        full_lines = trials_path(full_dir, SPEC).read_text().splitlines()

        cut_dir.mkdir()
        damaged = "\n".join(full_lines[:3]) + "\n" + full_lines[3][: len(full_lines[3]) // 2]
        trials_path(cut_dir, SPEC).write_text(damaged)

        resumed = run_experiment(SPEC, jobs=1, out_dir=cut_dir, resume=True)
        assert resumed.resumed_trials == 3
        resumed_lines = trials_path(cut_dir, SPEC).read_text().splitlines()
        assert len(resumed_lines) == len(full_lines)
        assert sorted(
            canonical_line(json.loads(line)) for line in resumed_lines
        ) == sorted(canonical_line(json.loads(line)) for line in full_lines)

    def test_resume_rejects_mid_file_corruption(self, tmp_path):
        run_experiment(SPEC, jobs=1, out_dir=tmp_path)
        lines = trials_path(tmp_path, SPEC).read_text().splitlines()
        lines[1] = lines[1][:10]  # damage a non-final line
        trials_path(tmp_path, SPEC).write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupted"):
            run_experiment(SPEC, jobs=1, out_dir=tmp_path, resume=True)

    def test_resume_on_finished_run_is_noop(self, tmp_path):
        run_experiment(SPEC, jobs=1, out_dir=tmp_path)
        before = trials_path(tmp_path, SPEC).read_text()
        result = run_experiment(SPEC, jobs=1, out_dir=tmp_path, resume=True)
        assert result.resumed_trials == len(result.rows)
        assert trials_path(tmp_path, SPEC).read_text() == before

    def test_resume_rejects_stale_config(self, tmp_path):
        run_experiment(SPEC, jobs=1, out_dir=tmp_path)
        edited = dataclasses.replace(SPEC, budget=SPEC.budget + 1)
        with pytest.raises(ValueError, match="config_hash"):
            run_experiment(edited, jobs=1, out_dir=tmp_path, resume=True)

    def test_fresh_run_overwrites_without_resume(self, tmp_path):
        run_experiment(SPEC, jobs=1, out_dir=tmp_path)
        run_experiment(SPEC, jobs=1, out_dir=tmp_path)
        rows = trials_path(tmp_path, SPEC).read_text().splitlines()
        assert len(rows) == len(SPEC.methods) * SPEC.trials


class TestSuites:
    def test_smoke_suite_shape(self):
        (spec,) = get_suite("smoke")
        assert spec.name == "smoke"
        assert spec.graph.startswith("ba:")
        assert spec.seed_strategy == "spawn"

    def test_all_suites_materialize(self):
        for name, specs in suite_specs().items():
            assert specs, name
            assert len({s.name for s in specs}) == len(specs), name

    def test_figure_suites_keep_historical_seed_stream(self):
        for name in ("fig4", "fig5", "fig6", "fig8"):
            for spec in get_suite(name):
                assert spec.seed_strategy == "sequential", spec.name

    def test_unknown_suite_actionable(self):
        with pytest.raises(KeyError, match="available"):
            get_suite("nope")
        assert "smoke" in suite_names()


class TestSummary:
    def test_target_defaults_to_rarest(self):
        spec = dataclasses.replace(SPEC, target=None, methods=("SRW1",))
        result = run_experiment(spec, jobs=1)
        assert result.target_index == 1  # triangles rarer than wedges on BA

    def test_nrmse_unknown_method_actionable(self):
        result = run_experiment(SPEC, jobs=1)
        with pytest.raises(KeyError, match="no trials for method"):
            result.nrmse("guise")

    def test_graph_override(self, karate):
        result = run_experiment(SPEC, graph=karate, jobs=1)
        assert result.estimates("SRW1").shape == (4, 2)


class TestCheckpointSeedExclusivity:
    def test_run_with_checkpoints_rejects_rng_plus_seed(self, karate):
        spec = MethodSpec.parse("SRW1", 3)
        with pytest.raises(ValueError, match="not both"):
            run_with_checkpoints(
                karate, spec, [100, 200], rng=random.Random(1), seed=1
            )

    def test_checkpoint_session_rejects_rng_plus_seed_registry(self, karate):
        with pytest.raises(ValueError, match="not both"):
            checkpoint_session(
                karate, "guise", 200, rng=random.Random(1), seed=1
            )

    def test_each_alone_still_works(self, karate):
        spec = MethodSpec.parse("SRW1", 3)
        with_rng = run_with_checkpoints(
            karate, spec, [100], rng=random.Random(4)
        )
        with_seed = run_with_checkpoints(karate, spec, [100], seed=4)
        assert np.array_equal(
            with_rng[0].concentrations, with_seed[0].concentrations
        )


class TestBenchCLI:
    def test_bench_smoke_produces_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["bench", "--suite", "smoke", "--jobs", "2", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BENCH_smoke.json" in out
        summary = json.loads((tmp_path / "BENCH_smoke.json").read_text())
        assert summary["jobs"] == 2
        assert (tmp_path / "smoke.trials.jsonl").exists()

    def test_bench_list(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "fig4" in out

    def test_bench_unknown_suite_fails(self, capsys):
        from repro.cli import main

        assert main(["bench", "--suite", "nope"]) == 2
        assert "available" in capsys.readouterr().err


def test_smoke_suite_matches_checked_in_trajectory():
    """The committed BENCH_smoke.json reproduces on this machine: the
    perf numbers are environment-bound, but the statistics are not."""
    from pathlib import Path

    golden_path = (
        Path(__file__).resolve().parent.parent
        / "benchmarks" / "trajectory" / "BENCH_smoke.json"
    )
    golden = json.loads(golden_path.read_text())
    (spec,) = get_suite("smoke")
    assert golden["config_hash"] == spec.config_hash()
    result = run_experiment(spec, jobs=2)
    for method in spec.methods:
        assert result.nrmse(method) == pytest.approx(
            golden["nrmse"][method], abs=1e-9
        )


def test_barabasi_albert_source_connected():
    """The smoke graph needs no LCC reduction: BA graphs are connected."""
    from repro.graphs import largest_connected_component

    graph = barabasi_albert(180, 3, seed=1)
    lcc, _ = largest_connected_component(graph)
    assert lcc.num_nodes == graph.num_nodes
