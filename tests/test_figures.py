"""Tests for ASCII figure rendering."""

from __future__ import annotations

import pytest

from repro.evaluation.convergence import ConvergenceCurve
from repro.evaluation.figures import (
    ascii_bar_chart,
    ascii_line_chart,
    convergence_chart,
)


class TestBarChart:
    def test_basic_rendering(self):
        chart = ascii_bar_chart({"SRW1": 0.5, "SRW2": 0.25}, title="errors")
        lines = chart.splitlines()
        assert lines[0] == "errors"
        assert "SRW1" in lines[1] and "0.5000" in lines[1]

    def test_bar_lengths_proportional(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 0.5}, width=40)
        bars = [line.count("#") for line in chart.splitlines()]
        assert bars[0] == 2 * bars[1]

    def test_zero_value_no_bar(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 0.0})
        line_b = chart.splitlines()[1]
        assert "#" not in line_b

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_line_chart(
            [1, 2, 3], {"m1": [1.0, 0.5, 0.2], "m2": [0.9, 0.6, 0.3]}
        )
        assert "*" in chart and "+" in chart
        assert "*=m1" in chart and "+=m2" in chart

    def test_axis_labels(self):
        chart = ascii_line_chart([0, 10], {"s": [0.0, 5.0]})
        assert "5" in chart and "0" in chart
        assert "x: 0 .. 10" in chart

    def test_constant_series_ok(self):
        chart = ascii_line_chart([1, 2], {"flat": [1.0, 1.0]})
        assert "flat" in chart

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2], {"bad": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1], {})


class TestConvergenceChart:
    def test_renders_curves(self):
        curves = [
            ConvergenceCurve("SRW1", 3, 1, [100, 200], [0.5, 0.3]),
            ConvergenceCurve("SRW1CSS", 3, 1, [100, 200], [0.4, 0.2]),
        ]
        chart = convergence_chart(curves)
        assert "SRW1" in chart and "SRW1CSS" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            convergence_chart([])
