"""Tests for the high-level GraphletEstimator API."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    GraphletEstimator,
    estimate_concentration,
    estimate_counts,
    recommended_method,
)
from repro.exact import exact_concentrations, exact_counts
from repro.graphs import RestrictedGraph


class TestRecommendedMethods:
    def test_paper_recommendations(self):
        assert recommended_method(3) == "SRW1CSSNB"
        assert recommended_method(4) == "SRW2CSS"
        assert recommended_method(5) == "SRW2CSS"


class TestGraphletEstimator:
    def test_default_method_resolution(self, karate):
        est = GraphletEstimator(karate, k=4, seed=1)
        assert est.method == "SRW2CSS"

    def test_explicit_method(self, karate):
        est = GraphletEstimator(karate, k=3, method="SRW2NB", seed=1)
        assert est.method == "SRW2NB"

    def test_run_returns_result(self, karate):
        est = GraphletEstimator(karate, k=3, seed=2)
        result = est.run(2_000)
        assert result.steps == 2_000
        assert est.last_result is result

    def test_sequential_runs_differ(self, karate):
        """Subsequent runs continue the RNG stream (independent trials)."""
        est = GraphletEstimator(karate, k=3, method="SRW1", seed=3)
        a = est.run(1_000)
        b = est.run(1_000)
        assert not (a.sums == b.sums).all()

    def test_invalid_method_rejected(self, karate):
        with pytest.raises(ValueError):
            GraphletEstimator(karate, k=3, method="MAGIC")


class TestOneShots:
    def test_estimate_concentration(self, karate):
        truth = exact_concentrations(karate, 3)
        estimate = estimate_concentration(karate, 3, steps=30_000, seed=4)
        assert abs(estimate["triangle"] - truth[1]) < 0.02
        assert math.isclose(sum(estimate.values()), 1.0, rel_tol=1e-9)

    def test_estimate_counts_computes_r_d(self, karate):
        truth = exact_counts(karate, 3)
        counts = estimate_counts(karate, 3, steps=40_000, seed=5)
        assert abs(counts["triangle"] - truth[1]) < 0.25 * truth[1]
        assert abs(counts["wedge"] - truth[0]) < 0.25 * truth[0]

    def test_estimate_counts_explicit_r_d(self, karate):
        counts = estimate_counts(
            karate, 3, steps=20_000, seed=6, relationship_edges=karate.num_edges
        )
        assert counts["triangle"] > 0

    def test_estimate_counts_restricted_graph_unwraps(self, karate):
        api = RestrictedGraph(karate, seed_node=0)
        counts = estimate_counts(api, 3, steps=20_000, seed=7, method="SRW1")
        truth = exact_counts(karate, 3)
        assert abs(counts["triangle"] - truth[1]) < 0.4 * truth[1]
