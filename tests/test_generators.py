"""Tests for synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.graphs import GraphError, is_connected
from repro.graphs.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    erdos_renyi_gnm,
    graph_union,
    grid_graph,
    lollipop_graph,
    path_graph,
    powerlaw_cluster,
    powerlaw_configuration,
    random_regular,
    star_graph,
    watts_strogatz,
)
from repro.exact import global_clustering_coefficient


class TestDeterministicClassics:
    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert all(d == 4 for d in g.degrees())

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(d == 2 for d in g.degrees())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert sorted(g.degrees()) == [1, 1, 2, 2, 2]

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert g.num_edges == 6

    def test_lollipop(self):
        g = lollipop_graph(4, 3)
        assert g.num_nodes == 7
        assert g.num_edges == 6 + 3
        assert is_connected(g)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert is_connected(g)


class TestRandomModels:
    def test_erdos_renyi_determinism(self):
        assert erdos_renyi(50, 0.1, seed=3) == erdos_renyi(50, 0.1, seed=3)

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi(10, 0.0).num_edges == 0
        assert erdos_renyi(10, 1.0).num_edges == 45

    def test_erdos_renyi_invalid_p(self):
        with pytest.raises(GraphError):
            erdos_renyi(5, 1.5)

    def test_erdos_renyi_density(self):
        g = erdos_renyi(200, 0.05, seed=1)
        expected = 0.05 * 199 * 200 / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_gnm_exact_edges(self):
        g = erdos_renyi_gnm(30, 50, seed=2)
        assert g.num_edges == 50

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            erdos_renyi_gnm(4, 10)

    def test_barabasi_albert_edge_count(self):
        n, m = 100, 3
        g = barabasi_albert(n, m, seed=4)
        # star seed (m edges) + m per subsequent node
        assert g.num_edges == m + (n - m - 1) * m
        assert is_connected(g)

    def test_barabasi_albert_invalid(self):
        with pytest.raises(GraphError):
            barabasi_albert(3, 3)

    def test_barabasi_albert_hub_emerges(self):
        g = barabasi_albert(300, 2, seed=5)
        assert g.max_degree() > 10  # heavy-tailed

    def test_watts_strogatz_degrees(self):
        g = watts_strogatz(40, 4, 0.0, seed=6)
        assert all(d == 4 for d in g.degrees())

    def test_watts_strogatz_invalid_k(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1)

    def test_watts_strogatz_rewiring_keeps_edges(self):
        g0 = watts_strogatz(40, 4, 0.0, seed=7)
        g1 = watts_strogatz(40, 4, 0.5, seed=7)
        assert g1.num_edges == g0.num_edges

    def test_powerlaw_cluster_high_clustering(self):
        clustered = powerlaw_cluster(400, 4, 0.9, seed=8)
        plain = barabasi_albert(400, 4, seed=8)
        assert (
            global_clustering_coefficient(clustered)
            > 2 * global_clustering_coefficient(plain)
        )

    def test_powerlaw_cluster_connected(self):
        assert is_connected(powerlaw_cluster(100, 3, 0.5, seed=9))

    def test_powerlaw_configuration_degree_tail(self):
        g = powerlaw_configuration(500, 2.2, min_degree=1, seed=10)
        degrees = sorted(g.degrees(), reverse=True)
        assert degrees[0] > 5 * degrees[len(degrees) // 2 + 1]

    def test_powerlaw_configuration_invalid_exponent(self):
        with pytest.raises(GraphError):
            powerlaw_configuration(10, 0.5)

    def test_random_regular(self):
        g = random_regular(20, 3, seed=11)
        assert all(d == 3 for d in g.degrees())

    def test_random_regular_parity(self):
        with pytest.raises(GraphError):
            random_regular(5, 3)

    def test_graph_union_bridged(self):
        g = graph_union([cycle_graph(3), cycle_graph(4)], bridge=True)
        assert g.num_nodes == 7
        assert g.num_edges == 3 + 4 + 1
        assert is_connected(g)

    def test_graph_union_unbridged(self):
        g = graph_union([cycle_graph(3), cycle_graph(4)], bridge=False)
        assert not is_connected(g)


class TestStochasticBlockModel:
    def test_block_sizes(self):
        from repro.graphs.generators import stochastic_block_model

        g = stochastic_block_model([10, 20, 30], 0.5, 0.01, seed=1)
        assert g.num_nodes == 60

    def test_extreme_probabilities(self):
        from repro.graphs.generators import stochastic_block_model

        full = stochastic_block_model([4, 4], 1.0, 1.0, seed=2)
        assert full.num_edges == 8 * 7 // 2
        empty = stochastic_block_model([4, 4], 0.0, 0.0, seed=2)
        assert empty.num_edges == 0

    def test_within_block_denser(self):
        from repro.graphs.generators import stochastic_block_model

        g = stochastic_block_model([40, 40], 0.4, 0.02, seed=3)
        within = sum(
            1 for u, v in g.edges() if (u < 40) == (v < 40)
        )
        across = g.num_edges - within
        assert within > 3 * across

    def test_invalid_probability(self):
        from repro.graphs.generators import stochastic_block_model
        from repro.graphs import GraphError
        import pytest

        with pytest.raises(GraphError):
            stochastic_block_model([5], 1.5, 0.0)

    def test_invalid_block_size(self):
        from repro.graphs.generators import stochastic_block_model
        from repro.graphs import GraphError
        import pytest

        with pytest.raises(GraphError):
            stochastic_block_model([5, 0], 0.5, 0.1)

    def test_communities_concentrate_cliques(self):
        """The Friendster anecdote (§2.1): community structure raises the
        concentration of clique-like graphlets versus a degree-matched
        unstructured graph."""
        from repro.graphs.generators import erdos_renyi_gnm, stochastic_block_model
        from repro.graphs.components import largest_connected_component
        from repro.exact import exact_concentrations

        sbm = stochastic_block_model([25] * 4, 0.45, 0.02, seed=4)
        sbm, _ = largest_connected_component(sbm)
        er = erdos_renyi_gnm(100, sbm.num_edges, seed=4)
        er, _ = largest_connected_component(er)
        clique_sbm = exact_concentrations(sbm, 4)[5]
        clique_er = exact_concentrations(er, 4)[5]
        assert clique_sbm > 3 * clique_er
