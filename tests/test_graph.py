"""Tests for the core Graph type."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, GraphError
from repro.graphs.generators import complete_graph, cycle_graph, path_graph


def random_edge_lists(max_nodes: int = 12):
    """Hypothesis strategy: (num_nodes, edge list) pairs."""
    return st.integers(min_value=2, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ).filter(lambda e: e[0] != e[1]),
                max_size=3 * n,
            ),
        )
    )


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_isolated_nodes(self):
        g = Graph(5)
        assert g.num_nodes == 5
        assert g.degrees() == [0] * 5

    def test_simple_edges(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.neighbors(1) == [0, 2]

    def test_duplicate_edges_collapsed(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 5)])

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    @pytest.mark.parametrize(
        "bad_edge",
        [("a", 1), (0, "b"), (0.5, 1), (0, 1.0), (None, 1), (0, [1]), (True, 2)],
    )
    def test_non_int_node_ids_rejected(self, bad_edge):
        # Regression: these used to surface later as opaque TypeErrors
        # inside sorted()/set operations; now the constructor names the
        # offending edge.  bool is rejected too — it would silently alias
        # node 0/1.
        with pytest.raises(GraphError, match="node ids must be integers"):
            Graph(3, [(0, 1), bad_edge])

    def test_from_edges_rejects_non_int_node_ids(self):
        # Regression: from_edges used int() pre-coercion, silently
        # truncating (0.5, 1) to edge (0, 1) instead of erroring.
        with pytest.raises(GraphError, match="node ids must be integers"):
            Graph.from_edges([(0.5, 1), (1, 2)])
        with pytest.raises(GraphError, match="node ids must be integers"):
            Graph.from_edges([(True, 2)])

    def test_numpy_integer_node_ids_normalized(self):
        np = pytest.importorskip("numpy")
        g = Graph(3, [(np.int64(0), np.int32(1)), (1, 2)])
        assert g.num_edges == 2
        assert all(type(v) is int for v in g.neighbors(1))

    def test_from_edges_infers_size(self):
        g = Graph.from_edges([(0, 3), (3, 5)])
        assert g.num_nodes == 6
        assert g.num_edges == 2

    def test_from_edges_explicit_size(self):
        g = Graph.from_edges([(0, 1)], num_nodes=10)
        assert g.num_nodes == 10

    def test_from_adjacency(self):
        g = Graph.from_adjacency([[1, 2], [0], [0]])
        assert g.num_edges == 2
        assert g.has_edge(0, 2)

    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        assert g == h
        assert g is not h
        assert g._adj is not h._adj


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(4, [(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2) == [0, 1, 3]

    def test_edges_canonical_order(self):
        g = Graph(4, [(3, 2), (1, 0)])
        assert list(g.edges()) == [(0, 1), (2, 3)]

    def test_has_edge_symmetric(self):
        g = Graph(3, [(0, 2)])
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_degree_and_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.max_degree() == 3
        assert Graph(0).max_degree() == 0

    def test_neighbor_set_matches_list(self):
        g = cycle_graph(7)
        for v in g.nodes():
            assert g.neighbor_set(v) == set(g.neighbors(v))

    def test_equality_by_structure(self):
        assert Graph(3, [(0, 1)]) == Graph(3, [(1, 0)])
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])


class TestInducedSubgraphs:
    def test_induced_edges_triangle(self, k5):
        assert sorted(k5.induced_edges([0, 1, 2])) == [(0, 1), (0, 2), (1, 2)]

    def test_induced_edge_count(self, k5):
        assert k5.induced_edge_count([0, 1, 2, 3]) == 6

    def test_induced_edges_empty_for_independent_set(self):
        g = path_graph(5)
        assert g.induced_edges([0, 2, 4]) == []

    def test_is_connected_subset(self):
        g = path_graph(5)
        assert g.is_connected_subset([0, 1, 2])
        assert not g.is_connected_subset([0, 2])
        assert not g.is_connected_subset([])

    def test_is_connected_subset_single_node(self):
        g = path_graph(3)
        assert g.is_connected_subset([1])


class TestDerivedQuantities:
    def test_edge_relationship_count_formula(self):
        # |R(2)| = sum_v C(d_v, 2): path of 3 nodes has one wedge.
        assert path_graph(3).edge_relationship_count() == 1
        # K4: each node has C(3,2)=3 wedges -> 12.
        assert complete_graph(4).edge_relationship_count() == 12

    def test_edge_relationship_matches_paper_figure1(self, figure1_graph):
        # The paper's Figure 1 example states |R(2)| = 8.
        assert figure1_graph.edge_relationship_count() == 8

    @given(random_edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_edge_relationship_equals_pairwise_definition(self, data):
        n, edges = data
        g = Graph(n, edges)
        expected = sum(
            g.degree(u) + g.degree(v) - 2 for u, v in g.edges()
        ) // 2
        assert g.edge_relationship_count() == expected

    @given(random_edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_degree_sum_is_twice_edges(self, data):
        n, edges = data
        g = Graph(n, edges)
        assert sum(g.degrees()) == 2 * g.num_edges
