"""Streaming ingest tests (ISSUE 10 tentpole, layer 2).

The ingester must produce exactly the graph the legacy loader + LCC
pipeline produces — just without ever holding the edge list in Python
objects, under any memory budget, with any spill/merge schedule.  Node
labels differ by design (ingest relabels by sorted original id, the
legacy loader by first-seen order), so comparisons normalize through
original ids.
"""

from __future__ import annotations

import gzip

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.graphs import (
    CSRGraph,
    Graph,
    GraphError,
    MmapCSRGraph,
    ingest_edge_list,
    largest_connected_component,
    read_edge_list,
)
from repro.graphs.ingest import iter_edge_blocks
from repro.graphs.io import _read_edge_list_chunked


def _write(path, text, compress=False):
    if compress:
        with gzip.open(path, "wt") as handle:
            handle.write(text)
    else:
        path.write_text(text)
    return path


def _expected_csr(pairs) -> CSRGraph:
    """CSR the ingester should produce for ``pairs`` (lcc=False):
    dedupe + drop self-loops + relabel by sorted original id."""
    canon = sorted({(min(u, v), max(u, v)) for u, v in pairs if u != v})
    ids = np.unique(np.array(canon, dtype=np.int64).reshape(-1, 2))
    edges = [
        (int(np.searchsorted(ids, u)), int(np.searchsorted(ids, v)))
        for u, v in canon
    ]
    return CSRGraph.from_graph(Graph(int(ids.size), edges))


def _ingest(tmp_path, text, name="edges.txt", **kwargs) -> MmapCSRGraph:
    source = _write(tmp_path / name, text, compress=name.endswith(".gz"))
    report = ingest_edge_list(source, tmp_path / (name + ".mmap"), **kwargs)
    return MmapCSRGraph.load(report.out_dir), report


class TestIngestSmall:
    MESSY = (
        "# comment\n"
        "% konect-style comment\n"
        "\n"
        "1 2\n"
        "2\t1\n"          # duplicate, reversed, tab-separated
        "2 3 1.5 99\n"    # extra columns ignored
        "3 3\n"           # self-loop dropped
        "9 7\n"
        "7 9\n"           # duplicate
    )

    def test_counts_and_structure(self, tmp_path):
        graph, report = _ingest(tmp_path, self.MESSY, lcc=False)
        assert report.parsed_edges == 6
        assert report.self_loops == 1
        assert report.duplicate_edges == 2
        assert report.nodes == 5 and report.edges == 3
        assert graph == _expected_csr([(1, 2), (2, 3), (7, 9)])
        assert "5 nodes / 3 edges" in report.summary()

    def test_lcc_keeps_largest_component(self, tmp_path):
        graph, report = _ingest(tmp_path, self.MESSY, lcc=True)
        # Components: {1,2,3} and {7,9} -> keep the triangle-free path.
        assert report.components == 2
        assert report.dropped_nodes == 2 and report.dropped_edges == 1
        assert graph == _expected_csr([(0, 1), (1, 2)])

    def test_gzip_matches_plain(self, tmp_path):
        plain, _ = _ingest(tmp_path, self.MESSY, name="a.txt", lcc=False)
        gz, _ = _ingest(tmp_path, self.MESSY, name="b.txt.gz", lcc=False)
        assert np.array_equal(plain.indptr, gz.indptr)
        assert np.array_equal(plain.indices, gz.indices)

    def test_malformed_line_raises(self, tmp_path):
        source = _write(tmp_path / "bad.txt", "1 2\nnot numbers\n")
        with pytest.raises(GraphError, match="not numbers"):
            ingest_edge_list(source, tmp_path / "bad.mmap")

    def test_out_of_range_id_raises(self, tmp_path):
        source = _write(tmp_path / "big.txt", f"1 {2**32}\n")
        with pytest.raises(GraphError, match="2\\*\\*32"):
            ingest_edge_list(source, tmp_path / "big.mmap")

    def test_empty_input(self, tmp_path):
        graph, report = _ingest(tmp_path, "# nothing here\n", lcc=False)
        assert graph.num_nodes == 0 and graph.num_edges == 0
        assert report.edges == 0


class TestLegacyEquivalence:
    """ingest == read_edge_list (+ LCC) modulo the documented labeling."""

    def _legacy_original_edges(self, path, lcc: bool):
        graph, mapping = read_edge_list(path)
        inverse = {new: old for old, new in mapping.items()}
        if lcc:
            graph, lcc_map = largest_connected_component(graph)
            kept = {new: inverse[old] for old, new in lcc_map.items()}
            inverse = kept
        return {
            (min(inverse[u], inverse[v]), max(inverse[u], inverse[v]))
            for u, v in graph.edges()
        }

    @pytest.mark.parametrize("lcc", [False, True])
    def test_random_file_matches_legacy(self, tmp_path, lcc):
        rng = np.random.default_rng(42)
        pairs = rng.integers(0, 300, size=(2000, 2))
        text = "".join(f"{u} {v}\n" for u, v in pairs.tolist())
        graph, _ = _ingest(tmp_path, text, lcc=lcc)
        expected = self._legacy_original_edges(tmp_path / "edges.txt", lcc)
        assert graph == _expected_csr(expected)

    def test_sparse_ids_match_legacy(self, tmp_path):
        rng = np.random.default_rng(7)
        pairs = (rng.integers(0, 500, size=(800, 2)) * 7919 + 13).tolist()
        text = "".join(f"{u} {v}\n" for u, v in pairs)
        graph, _ = _ingest(tmp_path, text, lcc=True)
        expected = self._legacy_original_edges(tmp_path / "edges.txt", True)
        assert graph == _expected_csr(expected)

    @settings(max_examples=25, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 25), st.integers(0, 25)), min_size=1, max_size=60
        )
    )
    def test_roundtrip_property(self, pairs, tmp_path_factory):
        """Hypothesis round-trip: edge list -> ingest -> MmapCSRGraph is
        bitwise the CSR built from the same (normalized) edges."""
        if all(u == v for u, v in pairs):
            return
        tmp_path = tmp_path_factory.mktemp("ingest-prop")
        text = "".join(f"{u} {v}\n" for u, v in pairs)
        graph, _ = _ingest(tmp_path, text, lcc=False)
        expected = _expected_csr(pairs)
        assert np.array_equal(graph.indptr, expected.indptr)
        assert np.array_equal(graph.indices, expected.indices)
        assert np.array_equal(graph.degrees_array, expected.degrees_array)


class TestMemoryBudgets:
    def test_spilled_runs_bitwise_identical(self, tmp_path):
        """A starved budget (many spilled runs, k-way merge) produces the
        same bytes as an ample one (single in-RAM run)."""
        rng = np.random.default_rng(3)
        pairs = rng.integers(0, 20_000, size=(300_000, 2)).tolist()
        text = "".join(f"{u} {v}\n" for u, v in pairs)
        starved, _ = _ingest(tmp_path, text, name="starved.txt", max_memory_mb=0)
        ample, _ = _ingest(tmp_path, text, name="ample.txt", max_memory_mb=1024)
        assert np.array_equal(starved.indptr, ample.indptr)
        assert np.array_equal(starved.indices, ample.indices)

    def test_spill_scratch_removed(self, tmp_path):
        graph, report = _ingest(tmp_path, "1 2\n2 3\n")
        assert not (tmp_path / "edges.txt.mmap" / "_spill").exists()


class TestIterEdgeBlocks:
    def test_blocks_concatenate_to_file_pairs(self, tmp_path):
        text = "# c\n5 6\n6 7\n\n% c\n8 9\n"
        source = _write(tmp_path / "e.txt", text)
        us, vs = [], []
        for u, v in iter_edge_blocks(source, chunk_bytes=4):
            us.append(u)
            vs.append(v)
        assert np.concatenate(us).tolist() == [5, 6, 8]
        assert np.concatenate(vs).tolist() == [6, 7, 9]


class TestReadEdgeListRouting:
    """Satellite: the chunked numpy route is byte-identical to the
    per-line loop — same Graph, same first-seen mapping."""

    VARIANTS = [
        "3 1\n1 2\n2 3\n",
        "% percent comment\n3 1\r\n1 2\r\n2 3\n",          # CRLF + % comments
        "# c\n\n  3   1  \n\t1\t2\t\n2 3",                 # whitespace, no EOL
        "3 1 0.5\n1 2 7 8\n2 3\n3 3\n1 2\n",               # extras, loop, dup
        "103 101\n101 102\n102 103\n",                     # non-contiguous ids
    ]

    @pytest.mark.parametrize("text", VARIANTS)
    def test_routes_identical(self, tmp_path, text):
        source = _write(tmp_path / "v.txt", text)
        legacy_graph, legacy_map = read_edge_list(source, chunked_threshold=10**9)
        chunk_graph, chunk_map = _read_edge_list_chunked(source)
        assert chunk_graph == legacy_graph
        assert chunk_map == legacy_map
        assert chunk_graph._adj == legacy_graph._adj  # byte-identical order

    def test_threshold_routes_large_files(self, tmp_path):
        source = _write(tmp_path / "t.txt", "1 2\n2 3\n")
        via_chunked, _ = read_edge_list(source, chunked_threshold=0)
        via_legacy, _ = read_edge_list(source, chunked_threshold=10**9)
        assert via_chunked == via_legacy

    def test_malformed_raises_both_routes(self, tmp_path):
        source = _write(tmp_path / "m.txt", "1 2\n42\n")
        with pytest.raises(GraphError):
            read_edge_list(source, chunked_threshold=10**9)
        with pytest.raises(GraphError):
            read_edge_list(source, chunked_threshold=0)


class TestIngestCLI:
    def test_ingest_smoke(self, tmp_path, capsys):
        source = _write(tmp_path / "cli.txt", "1 2\n2 3\n3 1\n9 8\n")
        out_dir = tmp_path / "cli.mmap"
        code = main(
            ["ingest", str(source), "--out", str(out_dir), "--max-memory", "64"]
        )
        assert code == 0
        assert "3 nodes / 3 edges" in capsys.readouterr().out
        graph = MmapCSRGraph.load(out_dir)
        assert graph.num_nodes == 3 and graph.num_edges == 3

    def test_ingest_no_lcc(self, tmp_path, capsys):
        source = _write(tmp_path / "cli2.txt", "1 2\n2 3\n3 1\n9 8\n")
        out_dir = tmp_path / "cli2.mmap"
        assert main(["ingest", str(source), "--out", str(out_dir), "--no-lcc"]) == 0
        assert MmapCSRGraph.load(out_dir).num_nodes == 5
