"""End-to-end integration tests: the full pipeline as a user would run it."""

from __future__ import annotations

import math

import pytest

import repro
from repro import (
    GraphletEstimator,
    RestrictedGraph,
    estimate_concentration,
    exact_concentrations,
    load_dataset,
    run_trials,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestCrawlScenario:
    """The paper's headline use case: estimate graphlet statistics of a
    graph reachable only through neighbor-list APIs."""

    def test_restricted_crawl_estimates_triangles(self):
        hidden = load_dataset("brightkite-like")
        api = RestrictedGraph(hidden, seed_node=0)
        estimator = GraphletEstimator(api, k=3, method="SRW1CSSNB", seed=1)
        result = estimator.run(15_000)
        truth = exact_concentrations(hidden, 3)
        assert abs(result.concentrations[1] - truth[1]) < 0.25 * truth[1] + 0.01
        # The crawl must have touched only a bounded set of nodes.
        assert api.api_calls <= hidden.num_nodes

    def test_restricted_crawl_4node(self):
        hidden = load_dataset("epinion-like")
        api = RestrictedGraph(hidden, seed_node=0)
        result = GraphletEstimator(api, k=4, method="SRW2CSS", seed=2).run(10_000)
        truth = exact_concentrations(hidden, 4)
        dominant = max(truth, key=truth.get)
        assert abs(result.concentrations[dominant] - truth[dominant]) < 0.15


class TestAccuracyOrdering:
    def test_css_improves_over_basic(self):
        """The paper's core empirical claim (Fig. 4): CSS reduces NRMSE.

        Measured on the triangle concentration of a clustered graph with a
        modest budget, averaged over trials.
        """
        graph = load_dataset("slashdot-like")
        truth = exact_concentrations(graph, 3)
        basic = run_trials(graph, 3, "SRW1", steps=3_000, trials=24, base_seed=3)
        css = run_trials(graph, 3, "SRW1CSS", steps=3_000, trials=24, base_seed=3)
        assert css.nrmse_for(truth, 1) < basic.nrmse_for(truth, 1)

    def test_srw2_beats_psrw_for_4node_cliques(self):
        """Fig. 4b: smaller d wins for rare graphlets (clique, index 5)."""
        graph = load_dataset("facebook-like")
        truth = exact_concentrations(graph, 4)
        srw2 = run_trials(graph, 4, "SRW2CSS", steps=3_000, trials=16, base_seed=4)
        psrw = run_trials(graph, 4, "SRW3", steps=3_000, trials=16, base_seed=4)
        assert srw2.nrmse_for(truth, 5) < psrw.nrmse_for(truth, 5)


class TestConsistency:
    def test_concentration_vs_counts_consistent(self):
        """Count estimates renormalize to the concentration estimates."""
        graph = load_dataset("karate")
        est = GraphletEstimator(graph, k=3, method="SRW1", seed=5)
        result = est.run(10_000)
        counts = result.counts(graph.num_edges)
        concentration = result.concentrations
        total = counts.sum()
        for i in range(2):
            assert math.isclose(counts[i] / total, concentration[i], rel_tol=1e-9)

    def test_one_shot_matches_estimator_api(self):
        graph = load_dataset("karate")
        one_shot = estimate_concentration(graph, 3, steps=5_000, method="SRW1", seed=6)
        est = GraphletEstimator(graph, k=3, method="SRW1", seed=6)
        result = est.run(5_000)
        assert math.isclose(one_shot["triangle"], result.concentration_dict()["triangle"])


class TestDatasetPipeline:
    @pytest.mark.parametrize("name", ["karate", "brightkite-like", "slashdot-like"])
    def test_tiny_datasets_full_pipeline(self, name):
        graph = load_dataset(name)
        truth = exact_concentrations(graph, 3)
        summary = run_trials(graph, 3, "SRW1CSSNB", steps=4_000, trials=6, base_seed=7)
        error = summary.nrmse_for(truth, 1)
        assert error < 0.6  # loose: just confirms the pipeline is sane
