"""Tests for edge-list I/O."""

from __future__ import annotations

import pytest

from repro.graphs import GraphError, read_edge_list, write_edge_list
from repro.graphs.generators import erdos_renyi
from repro.graphs.io import graph_from_pairs, iter_edge_list


class TestRoundTrip:
    def test_write_read_roundtrip(self, tmp_path):
        g = erdos_renyi(40, 0.15, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        loaded, mapping = read_edge_list(path)
        assert loaded.num_edges == g.num_edges
        assert sorted(loaded.degrees()) == sorted(g.degrees())

    def test_gzip_roundtrip(self, tmp_path):
        g = erdos_renyi(20, 0.2, seed=2)
        path = tmp_path / "graph.txt.gz"
        write_edge_list(g, path)
        loaded, _ = read_edge_list(path)
        assert loaded.num_edges == g.num_edges


class TestParsing:
    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n% percent comment\n1 2\n2 3\n")
        g, mapping = read_edge_list(path)
        assert g.num_edges == 2
        assert set(mapping) == {1, 2, 3}

    def test_noncontiguous_ids_relabled(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 5000\n")
        g, mapping = read_edge_list(path)
        assert g.num_nodes == 3
        assert sorted(mapping.values()) == [0, 1, 2]

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 1\n1 2\n")
        g, _ = read_edge_list(path)
        assert g.num_edges == 1

    def test_duplicate_edges_collapsed(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2\n2 1\n1 2\n")
        g, _ = read_edge_list(path)
        assert g.num_edges == 1

    def test_extra_columns_tolerated(self, tmp_path):
        # KONECT dumps often carry weights/timestamps in columns 3+.
        path = tmp_path / "g.txt"
        path.write_text("1 2 1.5 1234567\n")
        g, _ = read_edge_list(path)
        assert g.num_edges == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("42\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_iter_edge_list_raw_pairs(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("7 9\n9 11\n")
        assert list(iter_edge_list(path)) == [(7, 9), (9, 11)]


class TestGraphFromPairs:
    def test_relabels(self):
        g = graph_from_pairs([(10, 20), (20, 30)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_drops_self_loops(self):
        g = graph_from_pairs([(1, 1), (1, 2)])
        assert g.num_edges == 1
