"""Tests for canonical forms and bitmask machinery."""

from __future__ import annotations

from itertools import permutations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphlets.isomorphism import (
    are_isomorphic,
    automorphism_count,
    bitmask_to_edges,
    canonical_certificate,
    connected_subsets,
    degree_sequence_of_mask,
    edges_to_bitmask,
    find_isomorphism,
    is_connected_mask,
    pair_index,
    pair_table,
    relabel_bitmask,
)


def masks(k: int):
    return st.integers(min_value=0, max_value=(1 << (k * (k - 1) // 2)) - 1)


class TestPairIndex:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_bijection_with_pair_table(self, k):
        table = pair_table(k)
        assert len(table) == k * (k - 1) // 2
        for b, (i, j) in enumerate(table):
            assert pair_index(i, j, k) == b
            assert pair_index(j, i, k) == b  # order-insensitive

    def test_invalid_pair(self):
        with pytest.raises(ValueError):
            pair_index(2, 2, 4)
        with pytest.raises(ValueError):
            pair_index(0, 4, 4)

    def test_edges_bitmask_roundtrip(self):
        edges = [(0, 2), (1, 3), (2, 3)]
        mask = edges_to_bitmask(edges, 4)
        assert sorted(bitmask_to_edges(mask, 4)) == sorted(edges)


class TestRelabeling:
    @given(masks(4), st.permutations(list(range(4))))
    @settings(max_examples=60, deadline=None)
    def test_relabel_preserves_edge_count(self, mask, perm):
        out = relabel_bitmask(mask, perm, 4)
        assert bin(out).count("1") == bin(mask).count("1")

    @given(masks(5), st.permutations(list(range(5))))
    @settings(max_examples=60, deadline=None)
    def test_relabel_invertible(self, mask, perm):
        inverse = [0] * 5
        for i, p in enumerate(perm):
            inverse[p] = i
        assert relabel_bitmask(relabel_bitmask(mask, perm, 5), inverse, 5) == mask


class TestCertificates:
    @given(masks(4), st.permutations(list(range(4))))
    @settings(max_examples=80, deadline=None)
    def test_certificate_invariant_under_relabeling(self, mask, perm):
        relabeled = relabel_bitmask(mask, perm, 4)
        assert canonical_certificate(mask, 4) == canonical_certificate(relabeled, 4)

    @given(masks(4))
    @settings(max_examples=60, deadline=None)
    def test_certificate_is_a_relabeling(self, mask):
        cert = canonical_certificate(mask, 4)
        assert any(
            relabel_bitmask(mask, perm, 4) == cert
            for perm in permutations(range(4))
        )

    @given(masks(5))
    @settings(max_examples=40, deadline=None)
    def test_certificate_matches_networkx_isomorphism(self, mask):
        """Two masks share a certificate iff networkx deems them isomorphic
        (checked against a random relabeling and a random perturbation)."""
        edges = bitmask_to_edges(mask, 5)
        g1 = nx.Graph(edges)
        g1.add_nodes_from(range(5))
        # A relabeled copy must match.
        perm = [4, 0, 3, 1, 2]
        relabeled = relabel_bitmask(mask, perm, 5)
        g2 = nx.Graph(bitmask_to_edges(relabeled, 5))
        g2.add_nodes_from(range(5))
        assert nx.is_isomorphic(g1, g2)
        assert canonical_certificate(mask, 5) == canonical_certificate(relabeled, 5)

    def test_nonisomorphic_distinct(self):
        path = edges_to_bitmask([(0, 1), (1, 2), (2, 3)], 4)
        star = edges_to_bitmask([(0, 1), (0, 2), (0, 3)], 4)
        assert canonical_certificate(path, 4) != canonical_certificate(star, 4)


class TestIsomorphismHelpers:
    def test_are_isomorphic(self):
        assert are_isomorphic([(0, 1), (1, 2)], [(2, 0), (0, 1)], 3)
        assert not are_isomorphic([(0, 1), (1, 2)], [(0, 1), (1, 2), (0, 2)], 3)

    def test_find_isomorphism_valid_map(self):
        a = [(0, 1), (1, 2), (2, 3)]
        b = [(3, 2), (2, 1), (1, 0)]
        perm = find_isomorphism(a, b, 4)
        mapped = {(min(perm[u], perm[v]), max(perm[u], perm[v])) for u, v in a}
        expected = {(min(u, v), max(u, v)) for u, v in b}
        assert mapped == expected

    def test_find_isomorphism_failure(self):
        with pytest.raises(ValueError):
            find_isomorphism([(0, 1)], [(0, 1), (1, 2)], 3)


class TestInvariants:
    def test_degree_sequence(self):
        star = edges_to_bitmask([(0, 1), (0, 2), (0, 3)], 4)
        assert degree_sequence_of_mask(star, 4) == (3, 1, 1, 1)

    def test_connectivity(self):
        assert is_connected_mask(edges_to_bitmask([(0, 1), (1, 2)], 3), 3)
        assert not is_connected_mask(edges_to_bitmask([(0, 1)], 3), 3)
        assert not is_connected_mask(0, 3)

    @pytest.mark.parametrize(
        "edges, k, expected",
        [
            ([(0, 1), (1, 2), (0, 2)], 3, 6),  # triangle: S3
            ([(0, 1), (1, 2)], 3, 2),  # wedge: swap endpoints
            ([(i, j) for i in range(4) for j in range(i + 1, 4)], 4, 24),  # K4
            ([(0, 1), (1, 2), (2, 3)], 4, 2),  # path: reversal
        ],
    )
    def test_automorphism_counts(self, edges, k, expected):
        assert automorphism_count(edges_to_bitmask(edges, k), k) == expected


class TestConnectedSubsets:
    def test_triangle_all_pairs(self):
        subsets = connected_subsets([(0, 1), (1, 2), (0, 2)], 3, 2)
        assert len(subsets) == 3

    def test_wedge_excludes_nonedge(self):
        subsets = connected_subsets([(0, 1), (1, 2)], 3, 2)
        assert frozenset({0, 2}) not in subsets
        assert len(subsets) == 2

    def test_path5_four_subsets(self):
        # P5: 4-node connected induced subgraphs are the two windows.
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        subsets = connected_subsets(edges, 5, 4)
        assert sorted(tuple(sorted(s)) for s in subsets) == [
            (0, 1, 2, 3),
            (1, 2, 3, 4),
        ]

    def test_singletons(self):
        subsets = connected_subsets([(0, 1)], 2, 1)
        assert len(subsets) == 2
