"""Tests for joint multi-size estimation (the MSS extension)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.joint import run_joint_estimation
from repro.exact import exact_concentrations
from repro.graphlets import graphlet_by_name
from repro.graphs import RestrictedGraph


class TestValidation:
    def test_empty_sizes(self, karate):
        with pytest.raises(ValueError):
            run_joint_estimation(karate, [], d=2, steps=100)

    def test_size_too_small(self, karate):
        with pytest.raises(ValueError):
            run_joint_estimation(karate, [2], d=1, steps=100)

    def test_d_too_large_for_k(self, karate):
        with pytest.raises(ValueError):
            run_joint_estimation(karate, [3], d=3, steps=100)

    def test_steps_positive(self, karate):
        with pytest.raises(ValueError):
            run_joint_estimation(karate, [3, 4], d=2, steps=0)


class TestJointAccuracy:
    def test_all_sizes_converge_basic(self, karate):
        results = run_joint_estimation(
            karate, [3, 4, 5], d=2, steps=40_000, rng=random.Random(1)
        )
        for k in (3, 4, 5):
            truth = exact_concentrations(karate, k)
            estimate = results[k].concentrations
            for index, value in truth.items():
                if value > 0.02:
                    assert abs(estimate[index] - value) < 0.3 * value + 0.01, (k, index)

    def test_all_sizes_converge_css(self, karate):
        results = run_joint_estimation(
            karate, [3, 4, 5], d=2, steps=40_000, css=True, rng=random.Random(2)
        )
        for k in (3, 4, 5):
            truth = exact_concentrations(karate, k)
            estimate = results[k].concentrations
            for index, value in truth.items():
                if value > 0.02:
                    assert abs(estimate[index] - value) < 0.3 * value + 0.01, (k, index)

    def test_nb_variant(self, karate):
        results = run_joint_estimation(
            karate, [3, 4], d=1, steps=30_000, nb=True, rng=random.Random(3)
        )
        truth = exact_concentrations(karate, 3)
        assert abs(results[3].concentrations[1] - truth[1]) < 0.1

    def test_srw1_star_unreachable_in_joint(self, karate):
        results = run_joint_estimation(
            karate, [3, 4], d=1, steps=5_000, rng=random.Random(4)
        )
        star = graphlet_by_name(4, "3-star").index
        assert star in results[4].unreachable
        assert results[4].sums[star] == 0


class TestJointSemantics:
    def test_shared_walk_metadata(self, karate):
        results = run_joint_estimation(
            karate, [3, 4, 5], d=2, steps=2_000, rng=random.Random(5)
        )
        assert {r.steps for r in results.values()} == {2_000}
        assert {r.method for r in results.values()} == {"SRW2"}
        # Shorter windows cover k nodes more often.
        assert results[3].valid_samples >= results[4].valid_samples
        assert results[4].valid_samples >= results[5].valid_samples

    def test_duplicate_sizes_deduplicated(self, karate):
        results = run_joint_estimation(
            karate, [4, 4, 3], d=2, steps=1_000, rng=random.Random(6)
        )
        assert sorted(results) == [3, 4]

    def test_reproducible(self, karate):
        a = run_joint_estimation(karate, [3, 4], d=2, steps=2_000, rng=random.Random(7))
        b = run_joint_estimation(karate, [3, 4], d=2, steps=2_000, rng=random.Random(7))
        for k in (3, 4):
            assert np.array_equal(a[k].sums, b[k].sums)

    def test_restricted_access_amortization(self, karate):
        """One crawl serves three sizes: the API-call count equals that of
        a single-size crawl of the same length."""
        api = RestrictedGraph(karate, seed_node=0)
        run_joint_estimation(api, [3, 4, 5], d=2, steps=3_000, rng=random.Random(8))
        joint_calls = api.api_calls

        api_single = RestrictedGraph(karate, seed_node=0)
        run_joint_estimation(api_single, [5], d=2, steps=3_000, rng=random.Random(8))
        assert joint_calls == api_single.api_calls

    def test_l2_size_matches_plain_psrw_weighting(self, karate):
        """In the joint run, the k = d + 1 size uses l = 2 windows whose
        weights coincide with PSRW's 1/alpha weighting."""
        results = run_joint_estimation(
            karate, [3], d=2, steps=5_000, css=True, rng=random.Random(9)
        )
        truth = exact_concentrations(karate, 3)
        assert abs(results[3].concentrations[1] - truth[1]) < 0.15 * truth[1] + 0.01
