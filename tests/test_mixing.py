"""Tests for mixing-time / spectral tools."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.graphs import Graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    lollipop_graph,
    path_graph,
)
from repro.walks import (
    effective_sample_size,
    mixing_time_exact,
    mixing_time_spectral,
    slem,
    spectral_gap,
    stationary_distribution,
    total_variation,
    transition_matrix,
)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self, karate):
        matrix = transition_matrix(karate)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_isolated_node_rejected(self):
        with pytest.raises(ValueError):
            transition_matrix(Graph(2, []))

    def test_stationary_is_left_eigenvector(self, karate):
        matrix = transition_matrix(karate)
        pi = stationary_distribution(karate)
        assert np.allclose(pi @ matrix, pi)
        assert math.isclose(pi.sum(), 1.0)

    def test_stationary_requires_edges(self):
        with pytest.raises(ValueError):
            stationary_distribution(Graph(3, []))


class TestSpectral:
    def test_complete_graph_slem(self):
        """K_n has SLEM 1/(n-1)."""
        assert math.isclose(slem(complete_graph(6)), 1 / 5, abs_tol=1e-9)

    def test_cycle_slem(self):
        """C_n has eigenvalues cos(2 pi k / n); for even n the SLEM is 1
        (bipartite, periodic)."""
        assert math.isclose(slem(cycle_graph(6)), 1.0, abs_tol=1e-9)
        assert math.isclose(
            slem(cycle_graph(5)), abs(math.cos(2 * math.pi * 2 / 5)), abs_tol=1e-9
        ) or math.isclose(
            slem(cycle_graph(5)), abs(math.cos(2 * math.pi / 5)), abs_tol=1e-9
        )

    def test_gap_positive_for_nonbipartite(self, karate):
        assert spectral_gap(karate) > 0

    def test_bipartite_bound_diverges(self):
        assert mixing_time_spectral(path_graph(4)) == math.inf


class TestExactMixing:
    def test_complete_graph_mixes_fast(self):
        assert mixing_time_exact(complete_graph(8)) <= 3

    def test_lollipop_slower_than_complete(self):
        fast = mixing_time_exact(complete_graph(8))
        slow = mixing_time_exact(lollipop_graph(8, 8))
        assert slow > 3 * fast

    def test_spectral_upper_bounds_exact(self, karate):
        exact = mixing_time_exact(karate)
        bound = mixing_time_spectral(karate)
        assert bound >= exact

    def test_bipartite_raises(self):
        with pytest.raises(RuntimeError):
            mixing_time_exact(cycle_graph(4), max_steps=200)

    def test_epsilon_validation(self, karate):
        with pytest.raises(ValueError):
            mixing_time_spectral(karate, epsilon=2.0)

    def test_monotone_in_epsilon(self, karate):
        loose = mixing_time_exact(karate, epsilon=0.25)
        tight = mixing_time_exact(karate, epsilon=0.01)
        assert tight >= loose


class TestHelpers:
    def test_total_variation(self):
        p = np.array([0.5, 0.5, 0.0])
        q = np.array([0.0, 0.5, 0.5])
        assert math.isclose(total_variation(p, q), 0.5)

    def test_total_variation_identical(self):
        p = np.array([0.3, 0.7])
        assert total_variation(p, p) == 0.0

    def test_effective_sample_size_iid(self):
        import random

        rng = random.Random(0)
        trace = [rng.random() for _ in range(2000)]
        ess = effective_sample_size(trace)
        assert ess > 1000  # iid noise: ESS close to n

    def test_effective_sample_size_correlated(self):
        # A slowly-varying trace has tiny ESS.
        trace = [math.sin(i / 200) for i in range(2000)]
        assert effective_sample_size(trace) < 100

    def test_effective_sample_size_short(self):
        assert effective_sample_size([1.0, 2.0]) == 2.0
