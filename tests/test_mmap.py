"""Memory-mapped CSR layout tests (ISSUE 10 tentpole, layer 1).

The out-of-core substrate's contract: a saved layout reloads bitwise
identical, every consumer (backends, walks, estimation, pickling,
shared-memory publishing) behaves exactly as on the in-RAM CSR, and any
corruption — truncation, bit flips, stale or foreign headers — is a
loud :class:`GraphError` naming the problem, never a silent wrong graph.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators import estimate
from repro.graphs import (
    CSRGraph,
    Graph,
    GraphError,
    MmapCSRGraph,
    as_backend,
    barabasi_albert,
    erdos_renyi,
    is_mmap_dir,
    load_dataset,
    to_mmap,
)
from repro.graphs.mmap import ARRAY_FILES, HEADER_NAME


def _saved(tmp_path, graph, name="layout"):
    csr = CSRGraph.from_graph(graph)
    directory = tmp_path / name
    csr.save(directory)
    return csr, directory


class TestRoundTrip:
    def test_karate_bitwise_equal(self, tmp_path, karate):
        csr, directory = _saved(tmp_path, karate)
        loaded = MmapCSRGraph.load(directory)
        assert np.array_equal(loaded.indptr, csr.indptr)
        assert np.array_equal(loaded.indices, csr.indices)
        assert np.array_equal(loaded.degrees_array, csr.degrees_array)
        assert loaded == csr
        assert loaded.num_nodes == csr.num_nodes
        assert loaded.num_edges == csr.num_edges

    def test_isolated_nodes_and_empty(self, tmp_path):
        for i, graph in enumerate([Graph(6, [(0, 1), (4, 5)]), Graph(3, [])]):
            csr, directory = _saved(tmp_path, graph, name=f"g{i}")
            loaded = MmapCSRGraph.load(directory)
            assert loaded == csr

    def test_save_is_idempotent(self, tmp_path, karate):
        csr, directory = _saved(tmp_path, karate)
        csr.save(directory)  # overwrite in place
        assert MmapCSRGraph.load(directory) == csr

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        p=st.floats(min_value=0.01, max_value=0.6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_random_graph_roundtrip(self, n, p, seed, tmp_path_factory):
        csr = CSRGraph.from_graph(erdos_renyi(n, p, seed=seed))
        directory = tmp_path_factory.mktemp("mmap-prop")
        csr.save(directory)
        loaded = MmapCSRGraph.load(directory)
        assert np.array_equal(loaded.indptr, csr.indptr)
        assert np.array_equal(loaded.indices, csr.indices)

    def test_is_mmap_dir(self, tmp_path, karate):
        _, directory = _saved(tmp_path, karate)
        assert is_mmap_dir(directory)
        assert not is_mmap_dir(tmp_path / "nope")


class TestBackendProtocol:
    def test_as_backend_mmap(self, karate):
        m = as_backend(karate, "mmap")
        assert isinstance(m, MmapCSRGraph)
        assert m == CSRGraph.from_graph(karate)

    def test_mmap_is_identity_for_mmap(self, karate):
        m = as_backend(karate, "mmap")
        assert as_backend(m, "mmap") is m

    def test_mmap_to_csr_is_identity(self, karate):
        # MmapCSRGraph IS a CSRGraph; no conversion, no RAM copy.
        m = as_backend(karate, "mmap")
        assert as_backend(m, "csr") is m

    def test_to_mmap_explicit_directory(self, tmp_path, karate):
        m = to_mmap(CSRGraph.from_graph(karate), tmp_path / "explicit")
        assert m.directory == tmp_path / "explicit"
        assert is_mmap_dir(tmp_path / "explicit")

    def test_restricted_graph_rejected(self, karate):
        from repro.graphs import RestrictedGraph

        with pytest.raises(GraphError):
            as_backend(RestrictedGraph(karate), "mmap")


class TestInterop:
    def test_pickle_reattaches(self, tmp_path, karate):
        csr, directory = _saved(tmp_path, karate)
        m = MmapCSRGraph.load(directory)
        clone = pickle.loads(pickle.dumps(m))
        assert isinstance(clone, MmapCSRGraph)
        assert clone == csr

    def test_to_shared_from_mmap(self, tmp_path, karate):
        """`repro serve` publishes straight from a file: mmap -> shared."""
        csr, directory = _saved(tmp_path, karate)
        m = MmapCSRGraph.load(directory)
        shared = m.to_shared()
        try:
            assert np.array_equal(shared.indptr, csr.indptr)
            assert np.array_equal(shared.indices, csr.indices)
        finally:
            shared.close()
            shared.unlink()

    def test_copy_detaches_from_disk(self, tmp_path, karate):
        csr, directory = _saved(tmp_path, karate)
        private = MmapCSRGraph.load(directory).copy()
        assert type(private) is CSRGraph
        assert private == csr


class TestCorruption:
    def test_missing_header(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(GraphError, match="missing header.json"):
            MmapCSRGraph.load(tmp_path / "empty")

    def test_bad_format_marker(self, tmp_path, karate):
        _, directory = _saved(tmp_path, karate)
        header = json.loads((directory / HEADER_NAME).read_text())
        header["format"] = "not-a-graph"
        (directory / HEADER_NAME).write_text(json.dumps(header))
        with pytest.raises(GraphError, match="format marker"):
            MmapCSRGraph.load(directory)

    def test_future_version_rejected(self, tmp_path, karate):
        _, directory = _saved(tmp_path, karate)
        header = json.loads((directory / HEADER_NAME).read_text())
        header["version"] = 999
        (directory / HEADER_NAME).write_text(json.dumps(header))
        with pytest.raises(GraphError, match="version"):
            MmapCSRGraph.load(directory)

    @pytest.mark.parametrize("name", ARRAY_FILES)
    def test_truncation_names_the_file(self, tmp_path, karate, name):
        _, directory = _saved(tmp_path, karate)
        path = directory / name
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(GraphError, match=f"{name}.*truncated"):
            MmapCSRGraph.load(directory, verify=False)

    def test_checksum_mismatch(self, tmp_path, karate):
        _, directory = _saved(tmp_path, karate)
        path = directory / "indices.bin"
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF  # same length, different content
        path.write_bytes(bytes(data))
        with pytest.raises(GraphError, match="checksum mismatch"):
            MmapCSRGraph.load(directory, verify=True)

    def test_verify_false_skips_checksums(self, tmp_path, karate):
        _, directory = _saved(tmp_path, karate)
        path = directory / "indices.bin"
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        MmapCSRGraph.load(directory, verify=False)  # hot-path reattach


class TestEstimationParity:
    """Fixed-seed estimation on the disk-backed arrays is bit-identical
    to the in-RAM CSR — the acceptance gate of the out-of-core layer."""

    @pytest.mark.parametrize("method,k", [("SRW1", 3), ("SRW2CSS", 4)])
    def test_estimate_bit_identical(self, tmp_path, method, k):
        graph = load_dataset("facebook-like")
        csr = CSRGraph.from_graph(graph)
        csr.save(tmp_path / "fb")
        m = MmapCSRGraph.load(tmp_path / "fb")
        r_ram = estimate(csr, method, k=k, budget=4000, seed=11, seed_node=1)
        r_map = estimate(m, method, k=k, budget=4000, seed=11, seed_node=1)
        assert np.array_equal(r_ram.concentrations, r_map.concentrations)
        assert r_ram.steps == r_map.steps

    def test_multichain_bit_identical(self, tmp_path):
        graph = barabasi_albert(300, 4, seed=5)
        csr = CSRGraph.from_graph(graph)
        csr.save(tmp_path / "ba")
        m = MmapCSRGraph.load(tmp_path / "ba")
        r_ram = estimate(csr, "SRW3", k=4, budget=3000, seed=2, chains=4)
        r_map = estimate(m, "SRW3", k=4, budget=3000, seed=2, chains=4)
        assert np.array_equal(r_ram.concentrations, r_map.concentrations)
