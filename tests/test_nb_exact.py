"""Exact verification of the NB-SRW theory (§4.2).

Builds the non-backtracking walk's transition matrix P' on the augmented
state space Omega = {directed edges of G(d)} exactly as defined in §4.2 and
verifies, with linear algebra rather than sampling:

* P' is row-stochastic,
* the uniform distribution over directed edges (pi'(e) = 1/2|R(d)|) is
  stationary — hence pi'(v) = d_v / 2|R(d)|, the paper's "NB-SRW preserves
  the stationary distribution" claim.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.graphs import Graph
from repro.graphs.generators import cycle_graph, lollipop_graph, star_graph
from repro.relgraph import relationship_graph


def nb_transition_matrix(graph: Graph) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """P' over directed edges, per the §4.2 definition."""
    directed = [(u, v) for u, v in graph.edges()] + [
        (v, u) for u, v in graph.edges()
    ]
    index: Dict[Tuple[int, int], int] = {e: i for i, e in enumerate(directed)}
    matrix = np.zeros((len(directed), len(directed)))
    for (i, j), row in index.items():
        degree_j = graph.degree(j)
        for k in graph.neighbors(j):
            col = index[(j, k)]
            if degree_j >= 2:
                if k != i:
                    matrix[row, col] = 1.0 / (degree_j - 1)
            else:
                # Degree-1 state: forced backtrack.
                matrix[row, col] = 1.0 if k == i else 0.0
    return matrix, directed


GRAPHS = {
    "lollipop": lambda: lollipop_graph(4, 2),
    "star": lambda: star_graph(4),
    "cycle": lambda: cycle_graph(5),
}


class TestNBTransitionMatrix:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_row_stochastic(self, name):
        matrix, _ = nb_transition_matrix(GRAPHS[name]())
        assert np.allclose(matrix.sum(axis=1), 1.0)

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_uniform_edge_distribution_stationary(self, name):
        matrix, directed = nb_transition_matrix(GRAPHS[name]())
        pi = np.full(len(directed), 1.0 / len(directed))
        assert np.allclose(pi @ matrix, pi, atol=1e-12)

    def test_node_marginal_is_degree_proportional(self, figure1_graph):
        """Summing the uniform edge distribution over incoming edges gives
        pi'(v) = d_v / 2|E|."""
        matrix, directed = nb_transition_matrix(figure1_graph)
        pi = np.full(len(directed), 1.0 / len(directed))
        node_marginal = np.zeros(figure1_graph.num_nodes)
        for (u, v), weight in zip(directed, pi):
            node_marginal[v] += weight
        degrees = np.array(figure1_graph.degrees(), dtype=float)
        assert np.allclose(node_marginal, degrees / degrees.sum())

    def test_stationary_on_relationship_graph(self, figure1_graph):
        """The same holds for the NB walk on G(2) — the form actually used
        by SRW2...NB methods."""
        relgraph, _ = relationship_graph(figure1_graph, 2)
        matrix, directed = nb_transition_matrix(relgraph)
        pi = np.full(len(directed), 1.0 / len(directed))
        assert np.allclose(pi @ matrix, pi, atol=1e-12)

    def test_no_backtracking_probability_mass(self, karate):
        """Wherever degree >= 2, the reverse edge gets zero probability."""
        matrix, directed = nb_transition_matrix(karate)
        index = {e: i for i, e in enumerate(directed)}
        for (i, j), row in list(index.items())[:200]:
            if karate.degree(j) >= 2:
                assert matrix[row, index[(j, i)]] == 0.0
