"""Tests for automorphism orbits and graphlet degree vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import exact_counts, triangles_per_node
from repro.graphlets import graphlet_by_name, graphlets
from repro.graphlets.catalog import induced_bitmask
from repro.graphlets.orbits import (
    graphlet_degree_signature_similarity,
    graphlet_degree_vectors,
    num_orbits,
    orbit_table,
    position_orbits,
)
from repro.graphs.generators import complete_graph, cycle_graph, path_graph, star_graph


class TestOrbitTable:
    @pytest.mark.parametrize("k, expected", [(3, 3), (4, 11), (5, 58)])
    def test_orbit_counts_match_literature(self, k, expected):
        """3 + 11 + 58 = the 72 non-trivial ORCA orbits for k <= 5."""
        assert num_orbits(k) == expected

    def test_orbit_ids_sequential(self):
        for k in (3, 4):
            ids = [o.orbit_id for o in orbit_table(k)]
            assert ids == list(range(len(ids)))

    def test_orbit_positions_partition_nodes(self):
        for k in (3, 4, 5):
            per_graphlet = {}
            for orbit in orbit_table(k):
                per_graphlet.setdefault(orbit.graphlet_index, []).extend(
                    orbit.positions
                )
            for positions in per_graphlet.values():
                assert sorted(positions) == list(range(k))

    def test_known_orbit_structures(self):
        """Wedge: {ends}, {center}; tailed-triangle: 3 orbits; cliques: 1."""
        def orbits_of(k, name):
            index = graphlet_by_name(k, name).index
            return [o for o in orbit_table(k) if o.graphlet_index == index]

        assert sorted(o.size for o in orbits_of(3, "wedge")) == [1, 2]
        assert len(orbits_of(3, "triangle")) == 1
        assert sorted(o.size for o in orbits_of(4, "tailed-triangle")) == [1, 1, 2]
        assert len(orbits_of(4, "clique")) == 1
        assert len(orbits_of(5, "clique")) == 1
        assert sorted(o.size for o in orbits_of(4, "3-star")) == [1, 3]


class TestPositionOrbits:
    def test_star_positions(self):
        g = star_graph(3)
        mask = induced_bitmask(g, [0, 1, 2, 3])
        orbits = position_orbits(mask, 4)
        # Center (position 0) alone; the three leaves share an orbit.
        assert orbits[1] == orbits[2] == orbits[3]
        assert orbits[0] != orbits[1]

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            position_orbits(0b1, 4)  # single edge among 4 nodes

    def test_relabeling_consistency(self):
        """Orbit multiset is invariant under relabeling."""
        from repro.graphlets import relabel_bitmask

        g = path_graph(4)
        mask = induced_bitmask(g, [0, 1, 2, 3])
        orbits = position_orbits(mask, 4)
        perm = (2, 0, 3, 1)
        relabeled = relabel_bitmask(mask, perm, 4)
        orbits_relabeled = position_orbits(relabeled, 4)
        assert sorted(orbits) == sorted(orbits_relabeled)


class TestGraphletDegreeVectors:
    def test_column_sums_match_counts(self, karate):
        """sum_v gdv[v, o] = |orbit| x C_i for o an orbit of graphlet i."""
        for k in (3, 4):
            gdv = graphlet_degree_vectors(karate, k)
            counts = exact_counts(karate, k)
            for orbit in orbit_table(k):
                assert gdv[:, orbit.orbit_id].sum() == orbit.size * counts[
                    orbit.graphlet_index
                ]

    def test_triangle_orbit_equals_triangles_per_node(self, karate):
        gdv = graphlet_degree_vectors(karate, 3)
        triangle_index = graphlet_by_name(3, "triangle").index
        (triangle_orbit,) = [
            o for o in orbit_table(3) if o.graphlet_index == triangle_index
        ]
        assert gdv[:, triangle_orbit.orbit_id].tolist() == triangles_per_node(karate)

    def test_wedge_center_orbit_formula(self, karate):
        """Induced wedges centered at v = C(d_v, 2) - t(v)."""
        gdv = graphlet_degree_vectors(karate, 3)
        wedge_index = graphlet_by_name(3, "wedge").index
        center_orbit = next(
            o
            for o in orbit_table(3)
            if o.graphlet_index == wedge_index and o.size == 1
        )
        triangles = triangles_per_node(karate)
        for v in karate.nodes():
            d = karate.degree(v)
            expected = d * (d - 1) // 2 - triangles[v]
            assert gdv[v, center_orbit.orbit_id] == expected

    def test_cycle_graph_gdv(self):
        """Every node of C6 lies in exactly one induced P3 as center, two
        as an end (and nothing else for k = 3)."""
        g = cycle_graph(6)
        gdv = graphlet_degree_vectors(g, 3)
        wedge_index = graphlet_by_name(3, "wedge").index
        for orbit in orbit_table(3):
            expected = 0
            if orbit.graphlet_index == wedge_index:
                expected = 1 if orbit.size == 1 else 2
            assert (gdv[:, orbit.orbit_id] == expected).all()

    def test_clique_gdv(self):
        g = complete_graph(5)
        gdv = graphlet_degree_vectors(g, 4)
        clique_orbit = next(
            o
            for o in orbit_table(4)
            if o.graphlet_index == graphlet_by_name(4, "clique").index
        )
        # Each node lies in C(4, 3) = 4 of the five K4s.
        assert (gdv[:, clique_orbit.orbit_id] == 4).all()

    def test_signature_similarity(self, karate):
        gdv = graphlet_degree_vectors(karate, 3)
        assert graphlet_degree_signature_similarity(gdv[0], gdv[0]) == pytest.approx(1.0)
        value = graphlet_degree_signature_similarity(gdv[0], gdv[33])
        assert 0 <= value <= 1

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            graphlet_degree_signature_similarity(np.zeros(3), np.ones(3))
