"""Cross-module property-based tests (hypothesis).

These encode the structural invariants that tie the subsystems together:
relationship-graph symmetry, walk-space/explicit-construction agreement,
estimator weight positivity, and count/concentration consistency — on
arbitrary random connected graphs rather than curated fixtures.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alpha import alpha_table
from repro.core.estimator import MethodSpec, run_estimation
from repro.exact import exact_counts
from repro.graphlets import graphlets
from repro.graphs import Graph, largest_connected_component
from repro.relgraph import relationship_graph, walk_space


@st.composite
def connected_graphs(draw, min_nodes=4, max_nodes=12):
    """Random connected graphs: a random tree plus random extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    rng_seed = draw(st.integers(0, 10_000))
    rng = random.Random(rng_seed)
    edges = [(rng.randrange(i), i) for i in range(1, n)]  # random tree
    extra = draw(st.integers(0, 2 * n))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((min(u, v), max(u, v)))
    return Graph(n, edges)


class TestRelationshipGraphProperties:
    @given(connected_graphs(), st.integers(2, 3))
    @settings(max_examples=25, deadline=None)
    def test_relationship_graph_is_connected(self, graph, d):
        """Theorem 3.1 of [36] on arbitrary connected graphs."""
        from repro.graphs import is_connected

        relgraph, states = relationship_graph(graph, d)
        assert relgraph.num_nodes == len(states)
        if relgraph.num_nodes > 0:
            assert is_connected(relgraph)

    @given(connected_graphs(), st.integers(2, 3))
    @settings(max_examples=25, deadline=None)
    def test_space_neighbors_match_construction(self, graph, d):
        """On-the-fly neighbor generation == explicit R(d) edges, for every
        state (full agreement, not spot checks)."""
        space = walk_space(d)
        relgraph, states = relationship_graph(graph, d)
        index = {s: i for i, s in enumerate(states)}
        for state in states:
            expected = {states[j] for j in relgraph.neighbors(index[state])}
            assert set(space.neighbors(graph, state)) == expected

    @given(connected_graphs(min_nodes=5, max_nodes=10))
    @settings(max_examples=15, deadline=None)
    def test_d4_neighbors_match_construction(self, graph):
        """The d=4 set-algebra fast path against the oracle."""
        space = walk_space(4)
        relgraph, states = relationship_graph(graph, 4)
        index = {s: i for i, s in enumerate(states)}
        for state in states:
            expected = {states[j] for j in relgraph.neighbors(index[state])}
            assert set(space.neighbors(graph, state)) == expected

    @given(connected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_edge_space_degree_formula(self, graph):
        space = walk_space(2)
        for u, v in graph.edges():
            assert space.degree(graph, (u, v)) == graph.degree(u) + graph.degree(v) - 2


class TestEstimatorProperties:
    @given(connected_graphs(min_nodes=6), st.sampled_from(["SRW1", "SRW2", "SRW2NB"]))
    @settings(max_examples=15, deadline=None)
    def test_result_invariants(self, graph, method):
        spec = MethodSpec.parse(method, 3)
        result = run_estimation(graph, spec, 300, rng=random.Random(0))
        assert (result.sums >= 0).all()
        assert result.valid_samples == result.sample_counts.sum()
        total = result.concentrations.sum()
        assert total == 0 or abs(total - 1.0) < 1e-9

    @given(connected_graphs(min_nodes=6))
    @settings(max_examples=10, deadline=None)
    def test_types_without_alpha_never_sampled(self, graph):
        result = run_estimation(
            graph, MethodSpec.parse("SRW1", 4), 300, rng=random.Random(1)
        )
        for index in result.unreachable:
            assert result.sample_counts[index] == 0

    @given(connected_graphs(min_nodes=6))
    @settings(max_examples=10, deadline=None)
    def test_sampled_types_exist_in_graph(self, graph):
        """Every type the walk reports must actually occur in the graph."""
        truth = exact_counts(graph, 4)
        result = run_estimation(
            graph, MethodSpec.parse("SRW2", 4), 500, rng=random.Random(2)
        )
        for g in graphlets(4):
            if result.sample_counts[g.index] > 0:
                assert truth[g.index] > 0


class TestAlphaProperties:
    @given(st.sampled_from([3, 4, 5]), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_alpha_values_even(self, k, d):
        """Every corresponding sequence pairs with its reversal, so alpha
        is even (for d < k)."""
        if d >= k:
            return
        for value in alpha_table(k, d):
            assert value % 2 == 0

    @given(connected_graphs(min_nodes=5, max_nodes=9))
    @settings(max_examples=10, deadline=None)
    def test_weighted_concentration_normalizes(self, graph):
        from repro.core.bounds import weighted_concentration

        truth = exact_counts(graph, 4)
        if sum(truth.values()) == 0:
            return
        weighted = weighted_concentration(graph, 4, 2, counts=truth)
        assert abs(sum(weighted.values()) - 1.0) < 1e-9


class TestLCCProperties:
    @given(
        st.integers(2, 14),
        st.lists(st.tuples(st.integers(0, 13), st.integers(0, 13)), max_size=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_lcc_idempotent(self, n, raw_edges):
        edges = [(u % n, v % n) for u, v in raw_edges if u % n != v % n]
        g = Graph(n, edges)
        lcc1, _ = largest_connected_component(g)
        lcc2, _ = largest_connected_component(lcc1)
        assert lcc1 == lcc2
