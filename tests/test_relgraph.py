"""Tests for the subgraph relationship graph G(d): on-the-fly neighbor
generation validated against explicit construction."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.graphs import Graph, is_connected
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.relgraph import (
    EdgeSpace,
    NodeSpace,
    SubgraphSpace,
    WalkSpaceError,
    enumerate_states,
    relationship_edge_count,
    relationship_graph,
    walk_space,
)


class TestFactory:
    def test_dispatch(self):
        assert isinstance(walk_space(1), NodeSpace)
        assert isinstance(walk_space(2), EdgeSpace)
        assert isinstance(walk_space(3), SubgraphSpace)

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            walk_space(0)
        with pytest.raises(ValueError):
            SubgraphSpace(2)


class TestExplicitConstruction:
    def test_figure1_g2(self, figure1_graph):
        """The paper's Figure 1: G(2) has 5 nodes (the edges) and 8 edges."""
        relgraph, states = relationship_graph(figure1_graph, 2)
        assert relgraph.num_nodes == 5
        assert relgraph.num_edges == 8
        assert states == sorted(figure1_graph.edges())

    def test_figure1_g3(self, figure1_graph):
        """Figure 1's G(3): the four 3-node connected induced subgraphs,
        fully connected to each other (each pair shares 2 nodes)."""
        relgraph, states = relationship_graph(figure1_graph, 3)
        assert relgraph.num_nodes == 4
        assert relgraph.num_edges == 6  # K4: every pair shares 2 nodes

    def test_g1_is_graph_itself(self, figure1_graph):
        relgraph, states = relationship_graph(figure1_graph, 1)
        assert relgraph.num_edges == figure1_graph.num_edges
        assert relgraph.num_nodes == figure1_graph.num_nodes

    def test_connectivity_theorem(self, karate):
        """Theorem 3.1 of Wang et al. [36]: G connected => G(d) connected."""
        for d in (2, 3):
            relgraph, _ = relationship_graph(karate, d)
            assert is_connected(relgraph)

    def test_edge_count_closed_forms(self, karate):
        assert relationship_edge_count(karate, 1) == karate.num_edges
        relgraph2, _ = relationship_graph(karate, 2)
        assert relationship_edge_count(karate, 2) == relgraph2.num_edges

    def test_enumerate_states_matches_esu_sizes(self, karate):
        assert len(enumerate_states(karate, 1)) == karate.num_nodes
        assert len(enumerate_states(karate, 2)) == karate.num_edges


class TestNodeSpace:
    def test_neighbors(self, figure1_graph):
        space = NodeSpace()
        assert space.neighbors(figure1_graph, (0,)) == [(1,), (2,), (3,)]
        assert space.degree(figure1_graph, (0,)) == 3

    def test_initial_state_isolated(self):
        g = Graph(2, [])
        with pytest.raises(WalkSpaceError):
            NodeSpace().initial_state(g, random.Random(1), seed_node=0)


class TestEdgeSpace:
    def test_degree_formula(self, figure1_graph):
        space = EdgeSpace()
        # Edge (0, 2) in Figure 1 (both endpoints degree 3): 3 + 3 - 2 = 4.
        assert space.degree(figure1_graph, (0, 2)) == 4

    def test_neighbors_match_explicit_relgraph(self, karate):
        space = EdgeSpace()
        relgraph, states = relationship_graph(karate, 2)
        index = {s: i for i, s in enumerate(states)}
        for state in states[:25]:
            expected = {states[j] for j in relgraph.neighbors(index[state])}
            assert set(space.neighbors(karate, state)) == expected

    def test_random_neighbor_uniform(self, figure1_graph):
        """The O(1) two-stage sampler of §5 must be uniform over the
        edge-state's neighbors."""
        space = EdgeSpace()
        rng = random.Random(42)
        state = (0, 2)
        draws = Counter(
            space.random_neighbor(figure1_graph, state, rng) for _ in range(8000)
        )
        neighbors = set(space.neighbors(figure1_graph, state))
        assert set(draws) == neighbors
        expected = 8000 / len(neighbors)
        for count in draws.values():
            assert abs(count - expected) < 5 * (expected ** 0.5)

    def test_isolated_edge_raises(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(WalkSpaceError):
            EdgeSpace().random_neighbor(g, (0, 1), random.Random(1))

    def test_initial_state_incident_to_seed(self, karate):
        state = EdgeSpace().initial_state(karate, random.Random(3), seed_node=5)
        assert 5 in state


class TestSubgraphSpace:
    @pytest.mark.parametrize("d", [3, 4])
    def test_neighbors_match_explicit_relgraph(self, karate, d):
        space = SubgraphSpace(d)
        relgraph, states = relationship_graph(karate, d)
        index = {s: i for i, s in enumerate(states)}
        rng = random.Random(0)
        for state in rng.sample(states, 10):
            expected = {states[j] for j in relgraph.neighbors(index[state])}
            assert set(space.neighbors(karate, state)) == expected

    def test_degree_matches_neighbor_count(self, karate):
        space = SubgraphSpace(3)
        state = space.initial_state(karate, random.Random(2), seed_node=0)
        assert space.degree(karate, state) == len(space.neighbors(karate, state))

    def test_initial_state_connected(self, karate):
        space = SubgraphSpace(4)
        state = space.initial_state(karate, random.Random(5), seed_node=10)
        assert len(state) == 4
        assert karate.is_connected_subset(state)
        assert 10 in state

    def test_initial_state_impossible(self):
        g = path_graph(2)
        with pytest.raises(WalkSpaceError):
            SubgraphSpace(3).initial_state(g, random.Random(1), seed_node=0)

    def test_star_center_swap(self):
        """In a star, removing the center disconnects: neighbors must keep
        the center."""
        g = star_graph(4)
        space = SubgraphSpace(3)
        for neighbor in space.neighbors(g, (0, 1, 2)):
            assert 0 in neighbor  # center always present

    def test_random_neighbor_member_of_neighbors(self, karate):
        space = SubgraphSpace(3)
        rng = random.Random(9)
        state = space.initial_state(karate, rng, seed_node=0)
        for _ in range(5):
            nxt = space.random_neighbor(karate, state, rng)
            assert nxt in set(space.neighbors(karate, state))
            state = nxt

    def test_no_neighbors_raises(self):
        g = cycle_graph(3)  # single 3-node state, no neighbors in G(3)
        space = SubgraphSpace(3)
        with pytest.raises(WalkSpaceError):
            space.random_neighbor(g, (0, 1, 2), random.Random(1))
