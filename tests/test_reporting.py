"""Tests for the reproduction-report driver."""

from __future__ import annotations

import pytest

from repro.reporting import (
    ReportSection,
    ReproductionReport,
    build_report,
    section_alpha,
    section_weighted_concentration,
)


class TestSections:
    def test_alpha_section_holds(self):
        section = section_alpha()
        assert section.claim_holds
        assert len(section.rows) == 3

    def test_weighted_concentration_section(self):
        section = section_weighted_concentration("karate")
        assert section.claim_holds
        assert len(section.rows) == 6  # one row per 4-node graphlet

    def test_section_render(self):
        section = ReportSection(
            title="T", headers=["a"], rows=[[1]], claim="c", claim_holds=True
        )
        text = section.render()
        assert "## T" in text and "HOLDS" in text

    def test_section_render_failure_status(self):
        section = ReportSection(
            title="T", headers=["a"], rows=[[1]], claim="c", claim_holds=False,
            notes="why",
        )
        text = section.render()
        assert "DOES NOT HOLD" in text and "why" in text


class TestReport:
    def test_empty_report_holds(self):
        report = ReproductionReport()
        assert report.all_claims_hold
        assert "Reproduction report" in report.render()

    def test_verdict_reflects_sections(self):
        bad = ReportSection("T", ["a"], [[1]], "c", claim_holds=False)
        report = ReproductionReport(sections=[bad])
        assert not report.all_claims_hold
        assert "WARNING" in report.render()

    @pytest.mark.slow
    def test_quick_report_end_to_end(self):
        """The full quick report at a tiny budget: all sections build and
        render; the deterministic sections must hold."""
        report = build_report(quick=True, seed=3)
        text = report.render()
        assert text.count("## ") == 5
        assert report.sections[0].claim_holds  # alpha: deterministic
        assert report.sections[2].claim_holds  # weighted conc: deterministic


class TestCLIIntegration:
    def test_report_written_to_file(self, tmp_path, monkeypatch):
        """Exercise the CLI path with stubbed (instant) sections."""
        import repro.cli as cli
        import repro.reporting as reporting

        def fake_build(quick=True, seed=0, datasets=None):
            return ReproductionReport(
                sections=[ReportSection("T", ["a"], [[1]], "c", True)]
            )

        monkeypatch.setattr(reporting, "build_report", fake_build)
        out = tmp_path / "report.md"
        assert cli.main(["report", "--output", str(out)]) == 0
        assert "## T" in out.read_text()
