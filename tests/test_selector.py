"""``method="auto"`` selection (ISSUE 8 tentpole).

The selector is a pure function of cheap graph statistics and the
config, so every branch is pinned directly: the exact-enumeration
short-circuit, the §6.2 walk recommendation, chain/backend promotion,
and the caller-pinned overrides.  The report itself must round-trip
into ``Estimate.meta["selection"]`` unchanged.
"""

from __future__ import annotations

import pytest

from repro import estimate
from repro.core import EstimationConfig, TargetStderr, recommended_method
from repro.estimators import SelectionReport, select
from repro.estimators.selector import (
    AUTO_CHAINS,
    EXACT_NODE_CEILING,
    LARGE_GRAPH_EDGES,
    MIN_BUDGET_FOR_CHAINS,
)
from repro.graphs import barabasi_albert


@pytest.fixture(scope="module")
def medium():
    """Past the k=3 exact ceiling, below the large-graph edge count."""
    return barabasi_albert(240, 3, seed=2)


def _config(**kwargs) -> EstimationConfig:
    kwargs.setdefault("method", "auto")
    return EstimationConfig(**kwargs)


class TestExactBranch:
    def test_small_graph_short_circuits_to_exact(self, karate):
        report = select(karate, _config(k=3, target=2_000))
        assert report.method == "exact"
        assert report.chains == 1
        assert report.num_nodes == karate.num_nodes
        assert any("exact enumeration" in reason for reason in report.reasons)

    def test_ceiling_tightens_with_k(self, karate):
        assert EXACT_NODE_CEILING[3] > EXACT_NODE_CEILING[4] > EXACT_NODE_CEILING[5]
        # 34 nodes clears every ceiling, so karate is exact at k=5 too.
        assert select(karate, _config(k=5, target=2_000)).method == "exact"

    def test_pinned_chains_disable_the_exact_branch(self, karate):
        report = select(karate, _config(k=3, chains=4, target=4_000))
        assert report.method == recommended_method(3)
        assert report.chains == 4
        assert any("pinned by the caller" in r for r in report.reasons)

    def test_k_defaults_to_3(self, karate):
        report = select(karate, _config(target=2_000))
        assert report.k == 3


class TestWalkBranch:
    def test_medium_graph_uses_the_paper_recommendation(self, medium):
        report = select(medium, _config(k=3, target=20_000))
        assert report.method == recommended_method(3)
        # No stderr-needing target, few edges: stays single-chain.
        assert report.chains == 1
        assert report.backend is None

    def test_stderr_target_promotes_chains_and_csr(self, medium):
        report = select(
            medium, _config(k=3, budget=20_000, target=TargetStderr(0.05))
        )
        assert report.chains == AUTO_CHAINS
        assert report.backend == "csr"
        assert any("between-chain stderr" in r for r in report.reasons)

    def test_tiny_budget_stays_single_chain(self, medium):
        report = select(
            medium,
            _config(
                k=3,
                budget=MIN_BUDGET_FOR_CHAINS - 1,
                target=TargetStderr(0.05),
            ),
        )
        assert report.chains == 1

    def test_large_graph_promotes_chains_without_a_target(self):
        big = barabasi_albert(4_000, 6, seed=3)
        assert big.num_edges >= LARGE_GRAPH_EDGES
        report = select(big, _config(k=4, target=40_000))
        assert report.method == recommended_method(4)
        assert report.chains == AUTO_CHAINS
        assert report.backend == "csr"

    def test_explicit_backend_is_kept(self, medium):
        report = select(medium, _config(k=3, backend="list", target=20_000))
        assert report.backend == "list"


class TestReport:
    def test_selection_is_deterministic(self, medium):
        config = _config(k=3, budget=20_000, target=TargetStderr(0.05))
        assert select(medium, config) == select(medium, config)

    def test_apply_folds_the_decision_into_the_config(self, medium):
        config = _config(k=3, budget=20_000, target=TargetStderr(0.05))
        resolved = select(medium, config).apply(config)
        assert resolved.method == recommended_method(3)
        assert resolved.chains == AUTO_CHAINS
        assert resolved.backend == "csr"
        assert resolved.target == config.target  # spec rides along

    def test_to_dict_and_describe(self, karate):
        report = select(karate, _config(k=3, target=2_000))
        data = report.to_dict()
        assert data["method"] == "exact"
        assert data["reasons"] == list(report.reasons)
        assert SelectionReport(**{**data, "reasons": tuple(data["reasons"])}) == report
        assert "auto -> exact" in report.describe()

    def test_estimate_records_the_selection(self, medium):
        result = estimate(
            medium, "auto", budget=20_000, seed=7, target=TargetStderr(0.05)
        )
        selection = result.meta["selection"]
        assert selection == select(
            medium,
            _config(k=None, budget=20_000, target=TargetStderr(0.05), seed=7),
        ).to_dict()
        assert result.method == selection["method"]
        assert result.chains == selection["chains"]

    def test_exact_answer_matches_the_oracle(self, karate):
        auto = estimate(karate, "auto", k=3, budget=2_000, seed=1)
        oracle = estimate(karate, "exact", k=3, budget=2_000, seed=1)
        assert auto.method == "exact"
        assert (auto.concentrations == oracle.concentrations).all()
