"""Estimation-service test suite (ISSUE 6 satellites 1 and 3).

Pins the daemon's three contracts:

* **Bit-identity** — a fixed-seed daemon answer equals in-process
  ``repro.estimate(...)`` on the same CSR graph exactly (and fanout
  equals the *serial* multi-chain reference exactly).
* **Any-time answers** — snapshot streams have strictly increasing
  steps, increasing ``seq``, exactly one final frame, and an interval
  that tightens from first to last frame.
* **Robustness** — worker SIGKILL mid-request requeues to the same
  final estimate, a deadline returns the last snapshot as a
  ``RequestTimeout``, admission is bounded, shutdown leaks no
  ``/dev/shm`` segments (asserted by the module-level guard).

Slow daemon fault-injection paths carry ``@pytest.mark.service`` and run
in the dedicated CI ``service-smoke`` job (``pytest -m service``);
everything else is tier-1.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import signal
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import estimate as in_process_estimate
from repro.core import TargetStderr
from repro.graphs import CSRGraph, barabasi_albert
from repro.graphs.shared import SEGMENT_PREFIX
from repro.service import (
    Client,
    Daemon,
    EstimateRequest,
    RequestFailed,
    RequestTimeout,
    ServiceOverloaded,
    ServiceServer,
)
from repro.service.worker import worker_main


def _segments() -> set:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)}
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return set()


@pytest.fixture(scope="module", autouse=True)
def segment_guard():
    """The whole module must leave ``/dev/shm`` exactly as found."""
    before = _segments()
    yield
    leaked = _segments() - before
    assert not leaked, f"orphaned shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="module")
def csr():
    return CSRGraph.from_graph(barabasi_albert(300, 3, seed=1))


@pytest.fixture(scope="module")
def daemon(csr, segment_guard):
    with Daemon(csr, workers=2) as running:
        yield running


def canon(estimate) -> dict:
    """``Estimate.to_dict()`` minus wall-clock noise (the bit-identity
    projection — everything else is a pure function of the request)."""
    data = estimate.to_dict()
    data.pop("elapsed_seconds", None)
    meta = data.get("meta")
    if isinstance(meta, dict):
        data["meta"] = {
            key: value
            for key, value in meta.items()
            if not key.endswith("_seconds")
        }
    return data


# ----------------------------------------------------------------------
# Bit-identity
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize(
        "method,k,budget",
        [("srw1", 3, 4000), ("srw2css", 4, 4000), ("srw3css", 5, 1500)],
    )
    def test_matches_in_process_estimate(self, daemon, csr, method, k, budget):
        got = daemon.estimate(method, k=k, budget=budget, seed=11)
        want = in_process_estimate(csr, method, k=k, budget=budget, seed=11)
        assert canon(got) == canon(want)

    def test_multichain_single_part_matches(self, daemon, csr):
        got = daemon.estimate("srw2css", k=4, budget=4000, seed=5, chains=3)
        want = in_process_estimate(
            csr, "srw2css", k=4, budget=4000, seed=5, chains=3
        )
        assert canon(got) == canon(want)

    @pytest.mark.filterwarnings("ignore:multi-chain run falling back")
    def test_fanout_matches_serial_multichain_reference(self, daemon):
        """Fanout parts pool to the *serial* multi-chain runner's exact
        answer (same per-chain seed derivation, same pooling algebra) —
        the list-backend graph is the reference that still takes the
        serial ``_run_multichain`` path."""
        graph = barabasi_albert(300, 3, seed=1)
        got = daemon.estimate(
            "srw2css", k=4, budget=4000, seed=3, chains=4, fanout=True
        )
        want = in_process_estimate(
            graph, "srw2css", k=4, budget=4000, seed=3, chains=4
        )
        assert canon(got) == canon(want)

    def test_concurrent_submitters_each_get_their_own_answer(self, daemon, csr):
        jobs = [
            ("srw1", 3, 101),
            ("srw2css", 4, 102),
            ("srw1", 3, 103),
            ("srw2css", 4, 104),
        ]

        def run(job):
            method, k, seed = job
            return canon(daemon.estimate(method, k=k, budget=3000, seed=seed))

        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            got = list(pool.map(run, jobs))
        want = [
            canon(in_process_estimate(csr, method, k=k, budget=3000, seed=seed))
            for method, k, seed in jobs
        ]
        assert got == want


# ----------------------------------------------------------------------
# Any-time snapshot stream
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_stream_contract(self, daemon):
        handle = daemon.submit(
            EstimateRequest(
                "srw2css", k=4, budget=4000, chains=2, seed=9, snapshot_steps=500
            )
        )
        frames = list(handle.snapshots(timeout=120))
        # Exactly one final frame, and it is the last one.
        assert [f.final for f in frames].count(True) == 1
        assert frames[-1].final
        # Steps strictly increase up to the full budget.
        steps = [f.steps for f in frames]
        assert all(b > a for a, b in zip(steps, steps[1:]))
        assert steps[-1] == 4000
        # seq increases one by one.
        assert [f.seq for f in frames] == list(range(1, len(frames) + 1))
        # The interval tightens from the first frame to the final answer.
        bounds = [f.stderr_bound for f in frames]
        assert all(b is not None for b in bounds)
        assert bounds[-1] <= bounds[0]

    def test_result_after_stream_is_the_final_estimate(self, daemon, csr):
        handle = daemon.submit(
            EstimateRequest("srw1", k=3, budget=2000, seed=17, snapshot_steps=400)
        )
        frames = list(handle.snapshots(timeout=120))
        result = handle.result(timeout=5)
        assert canon(result) == canon(frames[-1].estimate)
        assert canon(result) == canon(
            in_process_estimate(csr, "srw1", k=3, budget=2000, seed=17)
        )

    def test_target_stderr_early_stop_is_deterministic(self, csr):
        """With one worker the fanout parts run in a fixed order, so the
        early-stop point — and therefore the answer — is reproducible."""

        def run():
            with Daemon(csr, workers=1) as service:
                handle = service.submit(
                    EstimateRequest(
                        "srw2css",
                        k=4,
                        budget=40_000,
                        seed=7,
                        chains=4,
                        fanout=True,
                        snapshot_steps=1000,
                        target_stderr=0.02,
                    )
                )
                return list(handle.snapshots(timeout=300))[-1]

        first, second = run(), run()
        assert first.final and first.early_stopped and not first.timed_out
        assert 0 < first.steps < 40_000
        assert first.stderr_bound <= 0.02
        assert canon(first.estimate) == canon(second.estimate)
        assert first.steps == second.steps


# ----------------------------------------------------------------------
# Self-tuning: stopping targets, auto-selection, budget reallocation
# ----------------------------------------------------------------------
class TestSelfTuning:
    def test_target_spec_unifies_with_the_stderr_alias(self):
        alias = EstimateRequest("srw1", k=3, budget=4000, target_stderr=0.02)
        assert alias.target == TargetStderr(0.02)
        spec = EstimateRequest("srw1", k=3, budget=4000, target=TargetStderr(0.02))
        assert spec.target == alias.target
        # A step-capped spec overrides the raw budget.
        capped = EstimateRequest("srw1", k=3, budget=9999, target="steps:4000")
        assert capped.budget == 4000

    def test_auto_method_resolves_with_selection_meta(self, daemon):
        handle = daemon.submit(EstimateRequest("auto", k=3, budget=6000, seed=3))
        result = handle.result(timeout=120)
        selection = result.meta["selection"]
        assert result.method == selection["method"] != "auto"
        assert selection["num_nodes"] == 300

    def test_snapshots_carry_the_active_stopping_rule(self, daemon):
        handle = daemon.submit(
            EstimateRequest(
                "srw2css", k=4, budget=4000, chains=2, seed=9,
                snapshot_steps=1000, target=TargetStderr(1e-9),
            )
        )
        frames = list(handle.snapshots(timeout=120))
        assert frames, "no snapshots arrived"
        for frame in frames:
            stopping = frame.meta["stopping"]
            assert stopping["target"] == "stderr:1e-09"
            assert stopping["dynamic"]

    def test_released_budget_is_reallocated_to_converging_requests(self, csr):
        """An early-stopped request funds a still-converging one.

        Serialized on one worker for determinism: request A early-stops
        well under budget and releases the remainder to the pool;
        request B (an unreachable target) then draws pool-funded
        extension parts past its own budget.  A control daemon shows B
        alone stops exactly at its budget.
        """
        unreachable = TargetStderr(1e-9)
        b_request = EstimateRequest(
            "srw2css", k=4, budget=2000, seed=13, chains=2,
            fanout=True, snapshot_steps=500, target=unreachable,
        )
        with Daemon(csr, workers=1) as service:
            first = service.submit(
                EstimateRequest(
                    "srw2css", k=4, budget=40_000, seed=7, chains=4,
                    fanout=True, snapshot_steps=1000, target_stderr=0.02,
                )
            )
            a_final = list(first.snapshots(timeout=300))[-1]
            assert a_final.early_stopped
            released = service.stats()["released_budget"]
            assert released == 40_000 - a_final.steps > 0

            second = service.submit(b_request)
            b_final = list(second.snapshots(timeout=300))[-1]
            stats = service.stats()

        assert b_final.final and b_final.error is None
        # B ran past its own budget on pool-funded extension parts...
        assert b_final.steps > 2000
        stopping = b_final.estimate.meta["stopping"]
        assert stopping["extra_steps"] == b_final.steps - 2000 > 0
        # ...but the unreachable target still reports itself unmet, and
        # extensions are capped at 3x the original budget.
        assert not stopping["satisfied"]
        assert stopping["extra_steps"] <= 3 * 2000
        assert stats["reallocated_budget"] == stopping["extra_steps"]
        assert stats["released_budget"] == released - stopping["extra_steps"]

        # Control: with nothing in the pool, B stops exactly at budget.
        with Daemon(csr, workers=1) as service:
            control = service.submit(b_request).result(timeout=300)
        assert control.steps == 2000
        assert control.meta["stopping"]["extra_steps"] == 0

    def test_cancel_releases_unused_budget_exactly_once(self, csr):
        """A caller cancel banks budget - steps into the pool — once.

        The released amount must be exactly the cancelled request's
        unwalked remainder (pinned against the error snapshot the cancel
        produces), and a second cancel of the same handle must not bank
        anything more.
        """
        with Daemon(csr, workers=1) as service:
            handle = service.submit(
                EstimateRequest(
                    "srw2css", k=4, budget=2_000_000, seed=5,
                    snapshot_steps=2000,
                )
            )
            stream = handle.snapshots(timeout=120)
            first = next(stream)  # the request demonstrably ran...
            assert first.steps > 0
            handle.cancel()       # ...and is then abandoned mid-budget
            with pytest.raises(RequestFailed, match="cancelled") as excinfo:
                handle.result(timeout=60)
            final = excinfo.value.snapshot
            released = service.stats()["released_budget"]
            assert released == final.budget - final.steps > 0
            handle.cancel()  # idempotent: nothing left to release
            assert service.stats()["released_budget"] == released


# ----------------------------------------------------------------------
# Admission control and failure surfaces
# ----------------------------------------------------------------------
class TestAdmission:
    def test_unknown_method_fails_fast_without_leaking_a_slot(self, daemon, csr):
        with pytest.raises(KeyError, match="no_such_method"):
            daemon.submit(EstimateRequest("no_such_method", budget=100))
        # The rejection happened pre-admission: the daemon still serves.
        got = daemon.estimate("srw1", k=3, budget=1000, seed=0)
        assert canon(got) == canon(
            in_process_estimate(csr, "srw1", k=3, budget=1000, seed=0)
        )

    def test_fanout_rejects_chainless_methods(self, daemon):
        with pytest.raises(ValueError, match="independent-chain"):
            daemon.submit(
                EstimateRequest("wedge", k=4, budget=1000, chains=2, fanout=True)
            )

    def test_bounded_admission_backpressure(self, csr):
        with Daemon(csr, workers=1, max_pending=1) as service:
            hog = service.submit(
                EstimateRequest(
                    "srw1", k=3, budget=50_000_000, seed=1, snapshot_steps=20_000
                )
            )
            with pytest.raises(ServiceOverloaded, match="bounded admission"):
                service.submit(
                    EstimateRequest("srw1", k=3, budget=100, seed=2), block=False
                )
            hog.cancel()
            with pytest.raises(RequestFailed, match="cancelled"):
                hog.result(timeout=60)
            # Cancellation released the slot; the daemon serves again.
            final = service.estimate("srw1", k=3, budget=1000, seed=3)
            assert canon(final) == canon(
                in_process_estimate(csr, "srw1", k=3, budget=1000, seed=3)
            )

    def test_worker_side_failure_surfaces_as_request_failed(self, daemon):
        # k=99 passes admission (the method exists) but blows up when the
        # worker builds its config; the daemon relays the traceback text.
        with pytest.raises(RequestFailed, match="unsupported"):
            daemon.estimate("srw1", k=99, budget=1000, seed=1)


# ----------------------------------------------------------------------
# Socket server + client facade
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(daemon, tmp_path_factory):
    address = str(tmp_path_factory.mktemp("service") / "repro-test.sock")
    running = ServiceServer(daemon, address)
    running.start()
    yield address
    running.close()


class TestSocket:
    def test_ping_reports_daemon_stats(self, server, csr):
        stats = Client(server).ping()
        assert stats["workers"] >= 1
        assert stats["num_nodes"] == csr.num_nodes
        assert stats["num_edges"] == csr.num_edges

    def test_concurrent_clients_are_bit_identical(self, server, csr):
        jobs = [("srw1", 3, 21), ("srw2css", 4, 22), ("srw1", 3, 23)]

        def run(job):
            method, k, seed = job
            return canon(Client(server).query(method, k=k, budget=3000, seed=seed))

        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            got = list(pool.map(run, jobs))
        want = [
            canon(in_process_estimate(csr, method, k=k, budget=3000, seed=seed))
            for method, k, seed in jobs
        ]
        assert got == want

    def test_stream_over_socket(self, server):
        frames = list(
            Client(server).stream(
                "srw1", k=3, budget=2000, seed=2, snapshot_steps=400
            )
        )
        steps = [f.steps for f in frames]
        assert all(b > a for a, b in zip(steps, steps[1:]))
        assert frames[-1].final and frames[-1].estimate is not None

    def test_query_error_propagates(self, server):
        with pytest.raises(RequestFailed, match="unsupported"):
            Client(server).query("srw1", k=99, budget=500, seed=1)


# ----------------------------------------------------------------------
# Worker loop, driven in-process (frame-protocol coverage)
# ----------------------------------------------------------------------
def test_worker_main_frame_protocol(csr):
    shared = csr.to_shared()
    config = dict(
        method="srw1",
        k=3,
        target=2000,
        seed=4,
        seed_node=0,
        burn_in=0,
        backend=None,
        chains=1,
    )
    tasks: queue_module.SimpleQueue = queue_module.SimpleQueue()
    results: queue_module.SimpleQueue = queue_module.SimpleQueue()
    control_recv, control_send = multiprocessing.Pipe(duplex=False)
    try:
        control_send.send("r-cancelled")
        tasks.put(("r-live", 0, 0, config, 500))
        tasks.put(("r-cancelled", 0, 0, config, 500))
        tasks.put(("r-broken", 0, 0, dict(config, method="srw1", k=99), 500))
        tasks.put(None)
        worker_main(7, shared.handle, tasks, results, control_recv)

        frames = []
        while not results.empty():
            frames.append(results.get())
        assert frames[0] == ("ready", 7)
        assert frames[-1] == ("stopped", 7)

        partials = [f for f in frames if f[0] == "partial"]
        assert [p[5].steps for p in partials] == [500, 1000, 1500]
        (done,) = [f for f in frames if f[0] == "done"]
        assert done[1:5] == (7, "r-live", 0, 0)
        assert canon(done[5]) == canon(
            in_process_estimate(csr, "srw1", k=3, budget=2000, seed=4)
        )
        # The pre-broadcast cancel skips its task without running it.
        assert ("skipped", 7, "r-cancelled", 0, 0) in frames
        (error,) = [f for f in frames if f[0] == "error"]
        assert error[1:5] == (7, "r-broken", 0, 0)
        assert "Traceback" in error[5]
    finally:
        control_send.close()
        shared.close()
        shared.unlink()


# ----------------------------------------------------------------------
# Fault injection (slow; CI runs these under `pytest -m service`)
# ----------------------------------------------------------------------
@pytest.mark.service
class TestFaultInjection:
    def test_sigkilled_worker_requeues_to_the_same_answer(self, csr):
        golden = canon(
            in_process_estimate(csr, "srw2css", k=4, budget=60_000, seed=13)
        )
        with Daemon(csr, workers=2) as service:
            handle = service.submit(
                EstimateRequest(
                    "srw2css", k=4, budget=60_000, seed=13, snapshot_steps=2000
                )
            )
            victim = None
            deadline = time.monotonic() + 30
            while victim is None and time.monotonic() < deadline:
                busy = [
                    worker.process.pid
                    for worker in service._workers.values()
                    if worker.inflight is not None
                    and not worker.retired
                    and worker.process.is_alive()
                ]
                victim = busy[0] if busy else None
                if victim is None:
                    time.sleep(0.002)
            assert victim is not None, "no worker ever went busy"
            os.kill(victim, signal.SIGKILL)
            result = handle.result(timeout=300)
            assert canon(result) == golden
            stats = service.stats()
            assert stats["requeues"] >= 1
            # The pool healed: a replacement worker serves new requests.
            assert len(service.worker_pids()) == 2
            again = service.estimate("srw1", k=3, budget=1000, seed=2)
            assert canon(again) == canon(
                in_process_estimate(csr, "srw1", k=3, budget=1000, seed=2)
            )

    def test_cancel_after_sigkill_does_not_double_release_budget(self, csr):
        """A SIGKILL requeue must not inflate a later cancel's release.

        The dead incarnation's walked steps were spent compute even
        though the requeue reset its frames to replay from step 0; a
        cancel after the kill may only bank
        ``budget - live_steps - dead_steps``.  Pre-fix, the release was
        ``budget - live_steps`` — the dead incarnation's share was
        banked a second time.
        """
        with Daemon(csr, workers=2) as service:
            handle = service.submit(
                EstimateRequest(
                    "srw2css", k=4, budget=2_000_000, seed=17,
                    snapshot_steps=2000,
                )
            )
            stream = handle.snapshots(timeout=120)
            pre_kill = next(stream).steps  # the doomed incarnation's floor
            assert pre_kill > 0
            victim = None
            deadline = time.monotonic() + 30
            while victim is None and time.monotonic() < deadline:
                busy = [
                    worker.process.pid
                    for worker in service._workers.values()
                    if worker.inflight is not None
                    and not worker.retired
                    and worker.process.is_alive()
                ]
                victim = busy[0] if busy else None
                if victim is None:
                    time.sleep(0.002)
            assert victim is not None, "no worker ever went busy"
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 60
            while (
                service.stats()["requeues"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.002)
            assert service.stats()["requeues"] >= 1, "kill never requeued"
            handle.cancel()
            with pytest.raises(RequestFailed, match="cancelled") as excinfo:
                handle.result(timeout=60)
            final = excinfo.value.snapshot
            released = service.stats()["released_budget"]
            # final.steps only counts the live incarnation (the requeue
            # reset the dead one's frames), so exactly-once accounting
            # means the release is short of budget - steps by at least
            # the steps the dead incarnation demonstrably walked.
            assert 0 < released <= final.budget - final.steps - pre_kill

    def test_timeout_returns_last_snapshot(self, daemon):
        handle = daemon.submit(
            EstimateRequest(
                "srw1",
                k=3,
                budget=50_000_000,
                seed=1,
                snapshot_steps=20_000,
                timeout_seconds=1.5,
            )
        )
        with pytest.raises(RequestTimeout) as excinfo:
            handle.result(timeout=120)
        snapshot = excinfo.value.snapshot
        assert snapshot.final and snapshot.timed_out
        assert snapshot.error is None
        # The deadline still pays out the best any-time answer so far.
        assert 0 < snapshot.steps < 50_000_000
        assert snapshot.estimate is not None
        assert snapshot.estimate.concentrations is not None

    def test_timeout_over_socket(self, server):
        request = EstimateRequest(
            "srw1",
            k=3,
            budget=50_000_000,
            seed=1,
            snapshot_steps=20_000,
            timeout_seconds=1.0,
        )
        with pytest.raises(RequestTimeout) as excinfo:
            Client(server).query(request=request)
        assert excinfo.value.snapshot.timed_out
        assert excinfo.value.snapshot.estimate is not None
