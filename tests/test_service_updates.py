"""Daemon edge updates and republish-on-compact (ISSUE 7).

Pins the dynamic half of the service contract:

* **Pre-start updates** are plain overlay mutations — versioned,
  validated, no pool involved (tier-1 fast).
* **Republish** swaps the shared segment and worker pool atomically
  under the daemon lock: post-update answers are bit-identical to
  in-process estimation on the compacted graph, the worker count is
  restored, and no ``/dev/shm`` segment leaks (module guard).
* **Draining** — a request in flight across a republish still finishes.

Pool-spawning paths carry ``@pytest.mark.service`` like the rest of the
daemon suite; the pre-start tests stay tier-1.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import estimate as in_process_estimate
from repro.graphs import DeltaCSRGraph, GraphError
from repro.graphs.shared import SEGMENT_PREFIX
from repro.service import Daemon, EstimateRequest, ServiceClosed
from repro.streaming import EdgeStreamSpec


def _segments() -> set:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)}
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return set()


@pytest.fixture(scope="module", autouse=True)
def segment_guard():
    before = _segments()
    yield
    leaked = _segments() - before
    assert not leaked, f"orphaned shared-memory segments: {sorted(leaked)}"


@pytest.fixture()
def stream():
    return EdgeStreamSpec(
        graph="ba:200:3:2", batches=2, inserts_per_batch=6,
        deletes_per_batch=6, seed=4,
    )


class TestPreStart:
    def test_updates_version_the_graph(self, stream):
        daemon = Daemon(stream.base_graph(), workers=1)
        assert daemon.stats()["graph_version"] == 0
        for batch in stream.edge_batches():
            report = daemon.apply_updates(
                inserts=batch.inserts, deletes=batch.deletes, compact=False
            )
            assert not report["republished"]
        assert daemon.stats()["graph_version"] == stream.batches
        assert isinstance(daemon.graph, DeltaCSRGraph)
        churned = stream.churned_graph()
        assert np.array_equal(daemon.graph.indices, churned.indices)

    def test_compact_before_start_does_not_republish(self, stream):
        daemon = Daemon(stream.base_graph(), workers=1)
        batch = stream.edge_batches()[0]
        report = daemon.apply_updates(
            inserts=batch.inserts, deletes=batch.deletes, compact=True
        )
        assert report["version"] == 2  # apply + compaction both bump
        assert not report["republished"]
        assert daemon.graph.delta_edges == 0

    def test_invalid_batch_rejected_atomically(self, stream):
        daemon = Daemon(stream.base_graph(), workers=1)
        edges_before = daemon.graph.num_edges
        with pytest.raises(GraphError, match="already present"):
            daemon.apply_updates(inserts=[next(iter(daemon.graph.edges()))])
        assert daemon.stats()["graph_version"] == 0
        assert daemon.graph.num_edges == edges_before

    def test_closed_daemon_rejects_updates(self, stream):
        daemon = Daemon(stream.base_graph(), workers=1)
        daemon.close()
        with pytest.raises(ServiceClosed):
            daemon.apply_updates(inserts=[(0, 199)])


@pytest.mark.service
class TestRepublish:
    def test_post_republish_answers_match_in_process(self, stream):
        base = stream.base_graph()
        with Daemon(base, workers=2) as daemon:
            workers_before = daemon.worker_pids()
            for batch in stream.edge_batches():
                report = daemon.apply_updates(
                    inserts=batch.inserts, deletes=batch.deletes
                )
                assert report["republished"]
            stats = daemon.stats()
            assert stats["workers"] == 2
            assert daemon.worker_pids() != workers_before
            # Bit-identity: the republished pool answers exactly like
            # in-process estimation on the compacted graph.
            churned = stream.churned_graph()
            assert stats["num_edges"] == churned.num_edges
            served = daemon.estimate("SRW1CSSNB", k=3, budget=3_000, chains=4, seed=6)
            local = in_process_estimate(
                churned, "SRW1CSSNB", k=3, budget=3_000, chains=4, seed=6,
                backend="csr",
            )
            assert np.array_equal(served.concentrations, local.concentrations)

    def test_inflight_request_survives_republish(self, stream):
        base = stream.base_graph()
        batch = stream.edge_batches()[0]
        with Daemon(base, workers=2) as daemon:
            handle = daemon.submit(
                EstimateRequest(
                    method="SRW2CSS", k=4, budget=60_000, chains=4, seed=1
                )
            )
            daemon.apply_updates(inserts=batch.inserts, deletes=batch.deletes)
            final = handle.result(timeout=120)
            assert final.steps == 60_000
