"""Shared-memory CSR lifecycle tests (ISSUE 6 satellite).

The invariants a long-lived serving layer needs from
:mod:`repro.graphs.shared`: attach/detach round-trips are bitwise exact,
close/unlink are idempotent, a SIGKILL'd attacher neither corrupts nor
unlinks the owner's segment, and nothing this suite does leaves orphans
in ``/dev/shm``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    CSRGraph,
    Graph,
    GraphError,
    SharedCSRGraph,
    SharedGraphHandle,
    barabasi_albert,
    erdos_renyi,
    load_dataset,
)
from repro.graphs.shared import SEGMENT_PREFIX


def _segments() -> set:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)}
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return set()


@pytest.fixture(autouse=True)
def no_orphaned_segments():
    """Every test must leave ``/dev/shm`` exactly as it found it."""
    before = _segments()
    yield
    leaked = _segments() - before
    assert not leaked, f"orphaned shared-memory segments: {sorted(leaked)}"


def _roundtrip_check(csr: CSRGraph) -> None:
    shared = csr.to_shared()
    attached = CSRGraph.from_shared(shared.handle)
    try:
        assert np.array_equal(attached.indptr, csr.indptr)
        assert np.array_equal(attached.indices, csr.indices)
        assert np.array_equal(attached.degrees_array, csr.degrees_array)
        assert attached == csr
        assert attached.num_edges == csr.num_edges
    finally:
        attached.close()
        shared.close()
        shared.unlink()


class TestRoundTrip:
    def test_karate_bitwise_equal(self):
        _roundtrip_check(CSRGraph.from_graph(load_dataset("karate")))

    def test_ba_graph_bitwise_equal(self):
        _roundtrip_check(CSRGraph.from_graph(barabasi_albert(500, 4, seed=3)))

    def test_graph_with_isolated_nodes(self):
        _roundtrip_check(CSRGraph.from_graph(Graph(6, [(0, 1), (4, 5)])))

    def test_empty_graph(self):
        _roundtrip_check(CSRGraph.from_graph(Graph(3, [])))

    def test_attach_accepts_dict_handle(self):
        csr = CSRGraph.from_graph(load_dataset("karate"))
        shared = csr.to_shared()
        attached = CSRGraph.from_shared(shared.handle.to_dict())
        assert attached == csr
        attached.close()
        shared.close()
        shared.unlink()

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        p=st.floats(min_value=0.01, max_value=0.6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_random_graph_roundtrip(self, n, p, seed):
        """Hypothesis satellite: round-trip over random graphs."""
        _roundtrip_check(CSRGraph.from_graph(erdos_renyi(n, p, seed=seed)))


class TestLifecycle:
    def test_double_close_is_noop(self):
        shared = CSRGraph.from_graph(load_dataset("karate")).to_shared()
        shared.close()
        shared.close()  # idempotent, no BufferError / double-free
        assert shared.closed
        shared.unlink()

    def test_double_unlink_is_noop(self):
        shared = CSRGraph.from_graph(load_dataset("karate")).to_shared()
        shared.close()
        shared.unlink()
        shared.unlink()

    def test_context_manager_closes_and_unlinks_owner(self):
        csr = CSRGraph.from_graph(load_dataset("karate"))
        with csr.to_shared() as shared:
            name = shared.handle.name
            assert name in _segments()
        assert name not in _segments()
        assert shared.closed

    def test_to_shared_on_shared_graph_is_identity(self):
        shared = CSRGraph.from_graph(load_dataset("karate")).to_shared()
        assert shared.to_shared() is shared
        shared.close()
        shared.unlink()

    def test_owner_flags(self):
        shared = CSRGraph.from_graph(load_dataset("karate")).to_shared()
        attached = SharedCSRGraph.attach(shared.handle)
        assert shared.is_owner and not attached.is_owner
        attached.close()
        shared.close()
        shared.unlink()

    def test_create_rejects_non_csr(self):
        with pytest.raises(GraphError, match="needs a CSRGraph"):
            SharedCSRGraph.create(load_dataset("karate"))

    def test_stale_handle_size_mismatch_raises(self):
        shared = CSRGraph.from_graph(Graph(3, [(0, 1)])).to_shared()
        lying = SharedGraphHandle(
            name=shared.handle.name, num_nodes=10_000, num_indices=10_000
        )
        with pytest.raises(GraphError, match="stale handle"):
            SharedCSRGraph.attach(lying)
        shared.close()
        shared.unlink()

    def test_pickle_reattaches(self):
        csr = CSRGraph.from_graph(load_dataset("karate"))
        shared = csr.to_shared()
        clone = pickle.loads(pickle.dumps(shared))
        assert clone == csr and not clone.is_owner
        clone.close()
        shared.close()
        shared.unlink()

    def test_closed_graph_does_not_pickle(self):
        shared = CSRGraph.from_graph(load_dataset("karate")).to_shared()
        shared.close()
        with pytest.raises(GraphError, match="closed"):
            pickle.dumps(shared)
        shared.unlink()

    def test_copy_detaches_from_segment(self):
        csr = CSRGraph.from_graph(load_dataset("karate"))
        shared = csr.to_shared()
        private = shared.copy()
        shared.close()
        shared.unlink()
        # The copy survives the segment teardown.
        assert private == csr
        assert not isinstance(private, SharedCSRGraph)


def _walk_forever(handle, started):
    """Attach and walk until killed (the SIGKILL fault-injection prey)."""
    graph = CSRGraph.from_shared(handle)
    rng = np.random.default_rng(0)
    started.set()
    node = 0
    while True:
        row = graph.neighbors(node)
        node = int(row[rng.integers(len(row))])


class TestCrashSafety:
    def test_sigkill_attacher_leaves_owner_intact(self):
        """SIGKILL an attached worker mid-walk: the owner's segment
        survives, stays attachable, and still unlinks cleanly — no
        orphans (the autouse fixture asserts /dev/shm is unchanged)."""
        csr = CSRGraph.from_graph(barabasi_albert(400, 3, seed=5))
        shared = csr.to_shared()
        ctx = multiprocessing.get_context()
        started = ctx.Event()
        victim = ctx.Process(
            target=_walk_forever, args=(shared.handle, started), daemon=True
        )
        victim.start()
        assert started.wait(timeout=30), "attacher never started walking"
        time.sleep(0.05)  # let it take some steps mid-segment
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)
        assert victim.exitcode == -signal.SIGKILL
        # Segment is still alive and correct for everyone else.
        again = CSRGraph.from_shared(shared.handle)
        assert again == csr
        again.close()
        shared.close()
        shared.unlink()
