"""Tests for degree-signature classification (the paper's §5 fast path)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphlets import (
    ambiguous_signatures,
    classify_bitmask,
    classify_by_signature,
    graphlet_by_name,
    is_connected_mask,
    signature_candidates,
    signature_of_bitmask,
    signature_of_nodes,
    signature_table,
)
from repro.graphs.generators import complete_graph, path_graph


class TestSignatureTable:
    def test_k4_signatures_unique(self):
        """For k <= 4 degree signatures are a complete invariant."""
        assert ambiguous_signatures(3) == {}
        assert ambiguous_signatures(4) == {}

    def test_k5_known_collisions(self):
        """The two k=5 signature collisions: tadpole/banner and K23/house.

        This is why naive degree-signature classification (as in GUISE) is
        insufficient for 5-node graphlets.
        """
        collisions = ambiguous_signatures(5)
        assert (3, 2, 2, 2, 1) in collisions
        assert (3, 3, 2, 2, 2) in collisions
        assert len(collisions) == 2
        tadpole = graphlet_by_name(5, "tadpole").index
        banner = graphlet_by_name(5, "banner").index
        assert set(collisions[(3, 2, 2, 2, 1)]) == {tadpole, banner}
        k23 = graphlet_by_name(5, "K23").index
        house = graphlet_by_name(5, "house").index
        assert set(collisions[(3, 3, 2, 2, 2)]) == {k23, house}

    def test_candidates_lookup(self):
        assert signature_candidates((2, 1, 1), 3) == (0,)  # wedge
        assert signature_candidates((9, 9, 9), 3) == ()

    def test_table_covers_all_types(self):
        for k in (3, 4, 5):
            covered = [i for c in signature_table(k).values() for i in c]
            assert sorted(covered) == list(range(len(covered)))


class TestClassifyBySignature:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_agrees_with_canonical_classifier_exhaustively(self, k):
        bits = k * (k - 1) // 2
        for mask in range(1 << bits):
            if is_connected_mask(mask, k):
                assert classify_by_signature(mask, k) == classify_bitmask(mask, k)

    def test_disconnected_raises(self):
        with pytest.raises(KeyError):
            classify_by_signature(0, 4)

    @given(st.integers(0, (1 << 10) - 1))
    @settings(max_examples=100, deadline=None)
    def test_agreement_property(self, mask):
        if is_connected_mask(mask, 5):
            assert classify_by_signature(mask, 5) == classify_bitmask(mask, 5)


class TestSignatureOfNodes:
    def test_path_signature(self):
        g = path_graph(5)
        assert signature_of_nodes(g, [0, 1, 2, 3, 4]) == (2, 2, 2, 1, 1)

    def test_clique_signature(self):
        g = complete_graph(4)
        assert signature_of_nodes(g, [0, 1, 2, 3]) == (3, 3, 3, 3)

    def test_matches_bitmask_signature(self, figure1_graph):
        from repro.graphlets import induced_bitmask

        nodes = [0, 1, 2, 3]
        mask = induced_bitmask(figure1_graph, nodes)
        assert signature_of_nodes(figure1_graph, nodes) == signature_of_bitmask(mask, 4)
