"""Statistical acceptance suite for the vectorized CSS fast path.

Bit-parity tests prove the fast path computes the same numbers as the
serial reference; these tests prove those numbers estimate the right
*quantity*.  Each check runs SRW2+CSS many independent trials through
the experiments engine (parallel fan-out, resumable artifacts — the same
machinery as ``repro bench``) and asserts the trial-mean concentration
of the target graphlet lands inside a confidence interval around the
exact ground truth:

    |mean - truth| <= Z * stderr(trials)   with Z wide enough that a
                                           fixed seed never flakes

A biased re-weighting (wrong alpha padding, template mis-order, degree
off-by-one) shifts the mean by far more than the CI width at these
trial counts, so this is the end-to-end unbiasedness gate Eq. 7 implies.
Fixed seeds make the whole suite deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import exact_concentrations
from repro.experiments import ExperimentSpec, run_experiment
from repro.graphlets import graphlet_by_name

#: Wide two-sided z-bound: deterministic seeds mean this never flakes,
#: but a systematic bias of even a few percent fails it decisively.
Z_BOUND = 4.0


def assert_mean_within_ci(result, method: str, k: int, target: str) -> None:
    """Trial-mean concentration of ``target`` within Z * sem of truth."""
    index = graphlet_by_name(k, target).index
    truth = exact_concentrations(result.graph, k)[index]
    values = result.estimates(method)[:, index]
    mean = values.mean()
    sem = values.std(ddof=1) / np.sqrt(len(values))
    assert sem > 0, "degenerate trials: no spread across seeds"
    assert abs(mean - truth) <= Z_BOUND * sem, (
        f"{method} c[{target}] mean {mean:.6g} vs truth {truth:.6g} "
        f"(|dev| {abs(mean - truth):.3g} > {Z_BOUND} * sem {sem:.3g})"
    )


@pytest.fixture(scope="module")
def karate_acceptance():
    """24 batched SRW2+CSS trials on karate, fanned over 2 workers.

    chains=8 + backend="csr" routes every trial through the vectorized
    fast path; jobs=2 exercises the engine's parallel execution (seeds
    are pure functions of the trial index, so results are identical to
    jobs=1).
    """
    spec = ExperimentSpec(
        name="acceptance-srw2css-karate",
        graph="dataset:karate",
        k=4,
        methods=("SRW2CSS",),
        budget=20_000,
        trials=24,
        base_seed=71,
        seed_strategy="spawn",
        starts="random",
        target="clique",
        chains=8,
        backend="csr",
        description="statistical acceptance: batched CSS unbiasedness",
    )
    return spec, run_experiment(spec, jobs=2)


class TestKarateAcceptance:
    @pytest.mark.parametrize(
        "target", ["clique", "cycle", "path", "tailed-triangle", "chordal-cycle"]
    )
    def test_mean_concentration_within_ci(self, karate_acceptance, target):
        _, result = karate_acceptance
        assert_mean_within_ci(result, "SRW2CSS", 4, target)

    def test_trials_ran_batched(self, karate_acceptance):
        _, result = karate_acceptance
        estimates = result.method_estimates("SRW2CSS")
        assert len(estimates) == 24
        assert all(e.chains == 8 for e in estimates)

    def test_resume_is_a_noop_after_completion(self, karate_acceptance, tmp_path):
        """The acceptance sweep is resumable: re-running a finished sweep
        replays every recorded trial and executes nothing."""
        spec, fresh = karate_acceptance
        first = run_experiment(spec, jobs=1, out_dir=tmp_path)
        resumed = run_experiment(spec, jobs=1, out_dir=tmp_path, resume=True)
        assert resumed.resumed_trials == len(first.rows)
        for a, b in zip(first.rows, resumed.rows):
            assert a["seed"] == b["seed"]
            assert a["estimate"]["sums"] == b["estimate"]["sums"]
        # And the artifact rows match the in-memory parallel run exactly.
        for a, b in zip(fresh.rows, first.rows):
            assert a["estimate"]["sums"] == b["estimate"]["sums"]


class TestGeneratedBAAcceptance:
    def test_triangle_concentration_unbiased(self):
        """The same gate on a generated BA graph (no data-file
        dependency) with SRW1+CSS, whose d = 1 weight table exercises the
        other closed-form degree path."""
        spec = ExperimentSpec(
            name="acceptance-srw1css-ba",
            graph="ba:300:3:9",
            k=3,
            methods=("SRW1CSS",),
            budget=12_000,
            trials=16,
            base_seed=23,
            seed_strategy="spawn",
            target="triangle",
            chains=16,
            backend="csr",
        )
        result = run_experiment(spec, jobs=2)
        assert_mean_within_ci(result, "SRW1CSS", 3, "triangle")
        assert_mean_within_ci(result, "SRW1CSS", 3, "wedge")
