"""Tests for descriptive graph statistics."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.graphs import Graph, load_dataset
from repro.graphs.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    path_graph,
    powerlaw_configuration,
    star_graph,
)
from repro.graphs.stats import (
    average_degree,
    degree_assortativity,
    degree_histogram,
    density,
    estimated_diameter,
    powerlaw_exponent_mle,
    summarize,
)


class TestBasics:
    def test_degree_histogram(self):
        assert degree_histogram(star_graph(4)) == {4: 1, 1: 4}

    def test_average_degree(self):
        assert average_degree(cycle_graph(7)) == 2.0
        with pytest.raises(ValueError):
            average_degree(Graph(0))

    def test_density(self):
        assert density(complete_graph(5)) == 1.0
        assert density(Graph(5, [])) == 0.0
        with pytest.raises(ValueError):
            density(Graph(1))


class TestAssortativity:
    def test_star_is_disassortative(self):
        assert degree_assortativity(star_graph(5)) == -1.0

    def test_regular_graph_degenerate(self):
        assert degree_assortativity(cycle_graph(6)) == 0.0

    def test_matches_networkx(self, karate):
        expected = nx.degree_assortativity_coefficient(nx.karate_club_graph())
        assert math.isclose(degree_assortativity(karate), expected, rel_tol=1e-9)

    def test_no_edges_raises(self):
        with pytest.raises(ValueError):
            degree_assortativity(Graph(3, []))


class TestDiameter:
    def test_path_diameter_exact(self):
        assert estimated_diameter(path_graph(10), seed=1) == 9

    def test_complete_graph(self):
        assert estimated_diameter(complete_graph(6), seed=1) == 1

    def test_lower_bounds_true_diameter(self, karate):
        true_diameter = nx.diameter(nx.karate_club_graph())
        estimate = estimated_diameter(karate, samples=10, seed=2)
        assert estimate <= true_diameter
        assert estimate >= true_diameter - 1  # double sweep is near-exact

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            estimated_diameter(Graph(0))


class TestPowerlawMLE:
    def test_recovers_configuration_exponent_roughly(self):
        g = powerlaw_configuration(4000, 2.5, min_degree=2, seed=3)
        estimate = powerlaw_exponent_mle(g, d_min=2)
        assert 2.0 < estimate < 3.2

    def test_ba_exponent_near_three(self):
        g = barabasi_albert(4000, 3, seed=4)
        estimate = powerlaw_exponent_mle(g, d_min=5)
        assert 2.2 < estimate < 4.0

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            powerlaw_exponent_mle(path_graph(3), d_min=10)


class TestSummary:
    def test_summary_fields(self, karate):
        summary = summarize(karate)
        assert summary.num_nodes == 34
        assert summary.num_edges == 78
        assert math.isclose(summary.average_degree, 2 * 78 / 34)
        assert summary.max_degree == 17
        assert 0 < summary.clustering_coefficient < 1
        assert summary.diameter_lower_bound >= 4

    def test_summary_on_synthetic(self):
        summary = summarize(load_dataset("slashdot-like"))
        assert summary.density < 0.1
        assert summary.assortativity < 0.2  # BA graphs are not assortative
