"""Declarative stopping specs (ISSUE 8 tentpole + satellite 3).

Pins the three contracts of :mod:`repro.core.stopping`:

* **Bit-identity** — ``target=StepBudget(N)`` is byte-for-byte the
  legacy ``budget=N`` run (hypothesis, across the framework methods),
  and the deprecated ``EstimationConfig(budget=N)`` shim still produces
  it (under a ``DeprecationWarning``).
* **Monotonicity** — with a fixed seed and cadence, loosening a
  variance target never makes a run stop *later*.
* **Provenance** — an early-stopped estimate's ``meta["stopping"]``
  records the spec, the rule that fired, and the steps actually spent;
  a pure step-budget run carries no stopping meta at all.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import estimate
from repro.core import (
    AllOf,
    AnyOf,
    CIWidth,
    Deadline,
    EstimationConfig,
    StepBudget,
    StoppingRule,
    TargetStderr,
    TheoremBound,
    parse_target,
)
from repro.core.stopping import StopProbe, as_stopping_spec
from repro.estimators import prepare, run_config


def canon(result) -> dict:
    """``Estimate.to_dict()`` minus wall-clock noise."""
    data = result.to_dict()
    data.pop("elapsed_seconds", None)
    meta = data.get("meta")
    if isinstance(meta, dict):
        for key in [k for k in meta if k.endswith("_seconds")]:
            del meta[key]
    return data


# ----------------------------------------------------------------------
# Bit-identity: StepBudget(N) == legacy budget=N
# ----------------------------------------------------------------------
class TestBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        method=st.sampled_from(["srw1", "srw2css", "srw3css"]),
        budget=st.integers(min_value=200, max_value=2_000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_step_budget_equals_legacy_budget(self, karate, method, budget, seed):
        k = {"srw1": 3, "srw2css": 4, "srw3css": 5}[method]
        legacy = estimate(karate, method, k=k, budget=budget, seed=seed)
        spec = estimate(karate, method, k=k, target=StepBudget(budget), seed=seed)
        assert canon(legacy) == canon(spec)
        # A pure step budget never annotates the estimate.
        assert "stopping" not in spec.meta
        assert spec.steps == budget

    def test_deprecated_config_budget_still_runs_identically(self, karate):
        with pytest.warns(DeprecationWarning, match="target=StepBudget"):
            old = EstimationConfig(method="srw2css", k=4, budget=1_500, seed=9)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            new = EstimationConfig(
                method="srw2css", k=4, target=StepBudget(1_500), seed=9
            )
        assert old.budget == new.budget == 1_500
        assert old.target == new.target
        assert canon(prepare(karate, old).result()) == canon(
            run_config(karate, new)
        )

    def test_budget_conflicting_with_step_cap_is_an_error(self):
        with pytest.raises(ValueError, match="conflicts"):
            EstimationConfig(
                method="srw1", k=3, budget=5_000, target=StepBudget(4_000)
            )

    def test_budget_caps_an_open_ended_target(self):
        config = EstimationConfig(
            method="srw1", k=3, budget=7_000, target=TargetStderr(0.01)
        )
        assert config.budget == 7_000
        assert config.target.dynamic


# ----------------------------------------------------------------------
# Monotonic early stopping
# ----------------------------------------------------------------------
class TestMonotonicity:
    def _steps_at(self, graph, rule) -> int:
        result = estimate(
            graph,
            "srw1",
            k=3,
            budget=20_000,
            chains=4,
            backend="csr",
            seed=11,
            target=rule,
        )
        stopping = result.meta["stopping"]
        assert stopping["steps"] == result.steps
        return result.steps

    @settings(max_examples=6, deadline=None)
    @given(
        pair=st.tuples(
            st.floats(min_value=1e-4, max_value=0.3),
            st.floats(min_value=1e-4, max_value=0.3),
        )
    )
    def test_looser_stderr_target_never_stops_later(self, karate, pair):
        tight, loose = sorted(pair)
        assert self._steps_at(karate, TargetStderr(loose)) <= self._steps_at(
            karate, TargetStderr(tight)
        )

    def test_looser_ci_width_never_stops_later(self, karate):
        steps = [
            self._steps_at(karate, CIWidth(width))
            for width in (0.4, 0.1, 0.02, 0.002)
        ]
        assert steps == sorted(steps)

    def test_fired_rule_and_steps_are_recorded(self, karate):
        result = estimate(
            karate,
            "srw1",
            k=3,
            budget=20_000,
            chains=4,
            backend="csr",
            seed=11,
            target=TargetStderr(0.05) | StepBudget(20_000),
        )
        stopping = result.meta["stopping"]
        assert stopping["target"] == "stderr:0.05|steps:20000"
        assert stopping["fired"] == "stderr:0.05"
        assert stopping["satisfied"] and stopping["early"]
        assert 0 < stopping["steps"] < 20_000
        assert result.steps == stopping["steps"]

    def test_unreachable_target_spends_the_whole_cap(self, karate):
        result = estimate(
            karate,
            "srw1",
            k=3,
            budget=4_000,
            chains=4,
            backend="csr",
            seed=11,
            target=TargetStderr(1e-12),
        )
        stopping = result.meta["stopping"]
        assert result.steps == 4_000
        assert not stopping["satisfied"] and not stopping["early"]

    def test_single_chain_stderr_target_cannot_fire(self, karate):
        result = estimate(
            karate, "srw1", k=3, budget=3_000, seed=2, target=TargetStderr(1.0)
        )
        assert result.steps == 3_000
        assert not result.meta["stopping"]["satisfied"]


# ----------------------------------------------------------------------
# Rule algebra, parsing, and the probe
# ----------------------------------------------------------------------
class TestRules:
    def test_composition_flattens_and_dedupes(self):
        spec = TargetStderr(0.1) | StepBudget(100) | TargetStderr(0.1)
        assert isinstance(spec, AnyOf)
        assert spec.members == (TargetStderr(0.1), StepBudget(100))
        assert spec.dynamic and spec.requires_stderr
        assert spec.step_cap() == 100

    def test_allof_cap_needs_every_member_capped(self):
        both = StepBudget(100) & StepBudget(300)
        assert isinstance(both, AllOf)
        assert both.step_cap() == 300
        assert (StepBudget(100) & TargetStderr(0.1)).step_cap() is None

    def test_deadline_fires_on_elapsed(self):
        probe = StopProbe(estimate=None, steps=10, budget=100, elapsed=2.5)
        assert Deadline(2.0).satisfied(probe)
        assert not Deadline(3.0).satisfied(probe)

    def test_validation_rejects_nonpositive_thresholds(self):
        with pytest.raises(ValueError):
            StepBudget(0)
        with pytest.raises(ValueError):
            TargetStderr(0.0)
        with pytest.raises(ValueError):
            CIWidth(-0.1)
        with pytest.raises(ValueError, match="confidence"):
            CIWidth(0.1, confidence=1.0)
        with pytest.raises(ValueError, match="epsilon"):
            TheoremBound(epsilon=0.0)
        with pytest.raises(ValueError, match="delta"):
            TheoremBound(delta=1.0)

    def test_parse_target_round_trips_describe(self):
        for text in (
            "steps:5000",
            "deadline:2.5",
            "stderr:0.05",
            "ci:0.1",
            "rci:0.2",
            "ci:0.1@0.99",
            "stderr:0.05|steps:5000",
            "deadline:2.5&steps:5000",
        ):
            assert parse_target(text).describe() == text

    def test_parse_target_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_target("")
        with pytest.raises(ValueError, match="unknown stopping rule"):
            parse_target("pixie:3")
        with pytest.raises(ValueError, match="mixes"):
            parse_target("ci:0.1|steps:10&deadline:5")

    def test_as_stopping_spec_coercions(self):
        assert as_stopping_spec(5_000) == StepBudget(5_000)
        assert as_stopping_spec("5000") == StepBudget(5_000)
        rule = TargetStderr(0.1)
        assert as_stopping_spec(rule) is rule
        with pytest.raises(TypeError):
            as_stopping_spec(True)
        with pytest.raises(TypeError):
            as_stopping_spec(1.5)

    def test_theorem_bound_binds_to_the_graph(self, karate):
        result = estimate(
            karate,
            "srw1",
            k=3,
            budget=50_000,
            seed=4,
            target=TheoremBound(epsilon=0.5, delta=0.5, graphlet_index=1),
        )
        stopping = result.meta["stopping"]
        assert stopping["satisfied"]
        assert stopping["fired"].startswith("theorem3:0.5:0.5:g1(n>=")
        assert result.steps < 50_000

    def test_theorem_bound_needs_k(self, karate):
        config = EstimationConfig(
            method="srw1", budget=1_000, target=TheoremBound()
        )
        with pytest.raises(ValueError, match="graphlet size k"):
            run_config(karate, config)


# ----------------------------------------------------------------------
# Session.run cadence
# ----------------------------------------------------------------------
class TestRunCadence:
    def test_check_every_controls_the_stop_granularity(self, karate):
        coarse = estimate(
            karate, "srw1", k=3, budget=8_000, chains=4, backend="csr",
            seed=11, target=TargetStderr(0.05), check_every=4_000,
        )
        fine = estimate(
            karate, "srw1", k=3, budget=8_000, chains=4, backend="csr",
            seed=11, target=TargetStderr(0.05), check_every=500,
        )
        assert fine.steps <= coarse.steps
        assert coarse.steps % 4_000 == 0
        assert fine.steps % 500 == 0

    def test_check_every_must_be_positive(self, karate):
        with pytest.raises(ValueError, match="check_every"):
            estimate(
                karate, "srw1", k=3, budget=1_000, seed=1,
                target=TargetStderr(0.1), check_every=0,
            )

    def test_estimate_accepts_spec_strings(self, karate):
        result = estimate(
            karate, "srw1", k=3, budget=20_000, chains=4, backend="csr",
            seed=11, target="stderr:0.05|steps:20000",
        )
        assert result.meta["stopping"]["fired"] == "stderr:0.05"

    def test_stopping_rule_base_is_abstract(self):
        probe = StopProbe(estimate=None, steps=1, budget=2)
        with pytest.raises(NotImplementedError):
            StoppingRule().satisfied(probe)
        with pytest.raises(NotImplementedError):
            StoppingRule().describe()


class _StepsReached(StoppingRule):
    """Test-only dynamic rule: fires once ``probe.steps`` reaches a
    threshold — deterministic, unlike the variance rules, so cadence
    regressions pin exactly which check window fired."""

    def __init__(self, threshold: int) -> None:
        self.threshold = int(threshold)

    def satisfied(self, probe: StopProbe) -> bool:
        return probe.steps >= self.threshold

    def describe(self) -> str:
        return f"reached:{self.threshold}"


class TestCadenceTailWindows:
    """ISSUE 9 satellite: the final partial check window is a real one.

    When ``check_every`` does not divide the budget, the run's last
    window is shorter than the cadence — dynamic rules must still be
    evaluated there (a rule first met in the tail fires; an unmet one
    is *checked*, not skipped), and a refresh cap must be honored
    exactly rather than overshot by a full epoch.
    """

    def test_rule_met_only_in_the_partial_tail_still_fires(self, karate):
        # Windows of 4000/4000/1000: only the 1000-step tail can satisfy
        # the threshold, so a skipped tail check would report unmet.
        result = estimate(
            karate, "srw1", k=3, budget=9_000, chains=4, backend="csr",
            seed=11, target=_StepsReached(8_001), check_every=4_000,
        )
        assert result.steps == 9_000
        stopping = result.meta["stopping"]
        assert stopping["satisfied"]
        assert stopping["fired"] == "reached:8001"
        assert stopping["checks"] == 3

    def test_unmet_rule_is_still_checked_in_the_tail(self, karate):
        result = estimate(
            karate, "srw1", k=3, budget=9_000, chains=4, backend="csr",
            seed=11, target=TargetStderr(1e-12), check_every=4_000,
        )
        assert result.steps == 9_000
        stopping = result.meta["stopping"]
        assert not stopping["satisfied"]
        assert stopping["checks"] == 3  # 4000 + 4000 + the 1000 tail

    def test_refresh_cap_is_honored_exactly(self, karate):
        # cap 2500, epochs of 1000: the tail epoch must clamp to 500,
        # never overshoot to a full third epoch (3000 steps).
        from repro.streaming import ContinuousSession

        session = ContinuousSession(
            karate, "SRW1", k=3, chains=4, refresh_budget=1_000, seed=5
        )
        snapshot = session.refresh(target="stderr:1e-12|steps:2500")
        stopping = snapshot.meta["stopping"]
        assert stopping["steps"] == 2_500
        assert stopping["checks"] == 3
        assert session.consumed == 2_500
        assert not stopping["early"]

    def test_refresh_rule_met_in_the_clamped_tail_fires(self, karate):
        from repro.streaming import ContinuousSession

        session = ContinuousSession(
            karate, "SRW1", k=3, chains=4, refresh_budget=1_000, seed=5
        )
        spec = _StepsReached(2_400) | StepBudget(2_500)
        snapshot = session.refresh(target=spec)
        stopping = snapshot.meta["stopping"]
        assert stopping["steps"] == 2_500  # 1000 + 1000 + clamped 500
        assert stopping["satisfied"]
        assert stopping["fired"] == "reached:2400"
