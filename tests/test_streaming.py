"""Streaming subsystem: EdgeStreamSpec determinism and the warm-chain
ContinuousSession (replay bit-identity, touched-chain repair, budget
semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import DeltaCSRGraph, Graph, barabasi_albert
from repro.streaming import ContinuousSession, EdgeStreamSpec, StreamError

SMOKE = dict(
    graph="ba:200:3:2", batches=4, inserts_per_batch=8, deletes_per_batch=8, seed=3
)


class TestEdgeStream:
    def test_batches_deterministic(self):
        first = EdgeStreamSpec(**SMOKE).edge_batches()
        second = EdgeStreamSpec(**SMOKE).edge_batches()
        assert first == second
        assert len(first) == 4
        assert all(len(b.inserts) == 8 and len(b.deletes) == 8 for b in first)

    def test_batches_valid_against_live_set(self):
        spec = EdgeStreamSpec(**SMOKE)
        live = set(spec.base_graph().edges())
        for batch in spec.edge_batches():
            for edge in batch.deletes:
                assert edge in live
                live.discard(edge)
            for edge in batch.inserts:
                assert edge not in live
                assert edge[0] < edge[1]
                live.add(edge)
        churned = spec.churned_graph()
        assert set(churned.edges()) == live

    def test_replay_matches_churned(self):
        spec = EdgeStreamSpec(**SMOKE)
        replayed = spec.replay()
        assert replayed.version == spec.batches
        churned = spec.churned_graph()
        assert np.array_equal(replayed.indptr, churned.indptr)
        assert np.array_equal(replayed.indices, churned.indices)

    def test_net_edge_count_conserved(self):
        spec = EdgeStreamSpec(**SMOKE)  # equal churn in and out
        assert spec.churned_graph().num_edges == spec.base_graph().num_edges


def play(stream: EdgeStreamSpec, method="SRW1CSSNB", k=3, seed=5):
    """One full warm session over the stream; returns every refreshed
    concentration vector plus the session (for meta checks)."""
    session = ContinuousSession(
        stream.base_graph(), method, k=k, chains=4, refresh_budget=600, seed=seed
    )
    answers = [session.refresh().concentrations.copy()]
    for batch in stream.edge_batches():
        session.apply_updates(inserts=batch.inserts, deletes=batch.deletes)
        answers.append(session.refresh().concentrations.copy())
    return answers, session


class TestContinuousSession:
    def test_replay_bit_identical(self):
        stream = EdgeStreamSpec(**SMOKE)
        first, _ = play(stream)
        second, _ = play(stream)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_seed_changes_stream(self):
        stream = EdgeStreamSpec(**SMOKE)
        first, _ = play(stream, seed=5)
        other, _ = play(stream, seed=6)
        assert not all(np.array_equal(a, b) for a, b in zip(first, other))

    @pytest.mark.parametrize("method", ["SRW1", "SRW2CSS", "SRW1NB"])
    def test_methods_track_budget_and_version(self, method):
        stream = EdgeStreamSpec(**SMOKE)
        k = 3 if method.startswith("SRW1") else 4
        session = ContinuousSession(
            stream.base_graph(), method, k=k, chains=4, refresh_budget=400, seed=1
        )
        estimate = session.refresh()
        assert estimate.steps == 400
        assert estimate.meta["graph_version"] == 0
        for batch in stream.edge_batches():
            session.apply_updates(inserts=batch.inserts, deletes=batch.deletes)
            estimate = session.refresh()
        assert estimate.steps == 400 * (1 + stream.batches)
        assert estimate.meta["graph_version"] == stream.batches
        assert estimate.meta["refreshes"] == 1 + stream.batches
        assert estimate.meta["reprojected_chains"] == session._reprojected
        assert session.consumed == estimate.steps

    def test_touched_detection_is_sound(self):
        # Chains whose state avoids every changed endpoint must keep
        # their carried state; chains that hit one must be re-projected
        # onto a valid state of the *new* graph.
        graph = barabasi_albert(120, 3, seed=7)
        session = ContinuousSession(
            graph, "SRW2", k=4, chains=8, refresh_budget=800, seed=2
        )
        session.refresh()
        before = session._carried.copy()
        delta = session.graph
        live = sorted(delta.edges())
        batch_dels = [live[0], live[-1]]
        report = session.apply_updates(deletes=batch_dels)
        endpoints = {x for e in batch_dels for x in e}
        after = session._carried
        for b in range(session.chains):
            state_nodes = set(int(x) for x in np.atleast_1d(before[b]))
            if state_nodes & endpoints:
                assert b in report.touched
            else:
                assert b not in report.touched
                assert np.array_equal(before[b], after[b])
        for b in report.touched:
            u, v = (int(x) for x in np.atleast_1d(after[b]))
            assert delta.has_edge(u, v)  # valid G(2) state on the new graph

    def test_untouched_batch_reports_empty(self):
        session = ContinuousSession(
            barabasi_albert(100, 3, seed=1), "SRW1", k=3,
            chains=2, refresh_budget=100, seed=0,
        )
        report = session.apply_updates()
        assert report.touched == () and report.inserts == 0 and report.deletes == 0
        assert report.version == 0  # empty batch: no version bump
        # Updates before the first refresh never touch chains (none exist).
        g = session.graph
        edge = next(iter(g.edges()))
        report = session.apply_updates(deletes=[edge])
        assert report.version == 1 and report.touched == ()

    def test_adopts_existing_overlay(self):
        delta = DeltaCSRGraph(barabasi_albert(80, 3, seed=3))
        session = ContinuousSession(delta, "SRW1", k=3, chains=2, refresh_budget=50)
        assert session.graph is delta

    def test_refresh_budget_validation(self):
        graph = barabasi_albert(80, 3, seed=3)
        with pytest.raises(ValueError, match="refresh_budget"):
            ContinuousSession(graph, "SRW1", k=3, chains=8, refresh_budget=4)
        session = ContinuousSession(graph, "SRW1", k=3, chains=8, refresh_budget=8)
        with pytest.raises(ValueError, match="steps=4"):
            session.refresh(steps=4)

    def test_reproject_failure_raises_stream_error(self):
        # Delete the only edge a chain was standing on, leaving its
        # whole component isolated: no valid G(1) state is reachable
        # from the old anchors, and the lone fallback node is isolated
        # too once the last edge goes.
        session = ContinuousSession(
            Graph(2, [(0, 1)]), "SRW1", k=3, chains=1, refresh_budget=10, seed=0
        )
        session.refresh()
        with pytest.raises(StreamError, match="re-project chain 0"):
            session.apply_updates(deletes=[(0, 1)])
