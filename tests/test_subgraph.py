"""Tests for subgraph extraction utilities."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import Graph
from repro.graphs.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graphs.subgraph import (
    core_numbers,
    degeneracy,
    ego_network,
    induced_subgraph,
    k_core,
)


class TestInducedSubgraph:
    def test_relabeling(self, karate):
        sub, mapping = induced_subgraph(karate, [5, 0, 10])
        assert sub.num_nodes == 3
        assert sorted(mapping.values()) == [0, 1, 2]

    def test_edges_preserved(self, k5):
        sub, mapping = induced_subgraph(k5, [0, 2, 4])
        assert sub.num_edges == 3  # triangle

    def test_duplicates_collapsed(self):
        sub, _ = induced_subgraph(path_graph(4), [1, 1, 2])
        assert sub.num_nodes == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            induced_subgraph(path_graph(3), [5])

    def test_degrees_bounded_by_original(self, karate):
        nodes = list(range(10))
        sub, mapping = induced_subgraph(karate, nodes)
        for old in nodes:
            assert sub.degree(mapping[old]) <= karate.degree(old)


class TestEgoNetwork:
    def test_radius_zero(self, karate):
        ego, mapping = ego_network(karate, 0, radius=0)
        assert ego.num_nodes == 1

    def test_radius_one_star(self):
        g = star_graph(5)
        ego, _ = ego_network(g, 0, radius=1)
        assert ego.num_nodes == 6  # whole star

    def test_radius_one_leaf(self):
        g = star_graph(5)
        ego, _ = ego_network(g, 1, radius=1)
        assert ego.num_nodes == 2  # leaf + center

    def test_radius_grows_monotonically(self, karate):
        sizes = [
            ego_network(karate, 0, radius=r)[0].num_nodes for r in range(4)
        ]
        assert sizes == sorted(sizes)

    def test_negative_radius(self, karate):
        with pytest.raises(ValueError):
            ego_network(karate, 0, radius=-1)

    def test_matches_networkx(self, karate):
        nxg = nx.karate_club_graph()
        expected = nx.ego_graph(nxg, 33, radius=2)
        ego, _ = ego_network(karate, 33, radius=2)
        assert ego.num_nodes == expected.number_of_nodes()
        assert ego.num_edges == expected.number_of_edges()


class TestCores:
    def test_cycle_core_numbers(self):
        assert core_numbers(cycle_graph(6)) == [2] * 6

    def test_complete_graph(self):
        assert core_numbers(complete_graph(5)) == [4] * 5
        assert degeneracy(complete_graph(5)) == 4

    def test_star(self):
        cores = core_numbers(star_graph(4))
        assert cores == [1, 1, 1, 1, 1]

    def test_matches_networkx(self, karate):
        expected = nx.core_number(nx.karate_club_graph())
        assert core_numbers(karate) == [expected[v] for v in range(34)]

    def test_k_core_subgraph(self, karate):
        core, mapping = k_core(karate, 4)
        expected = nx.k_core(nx.karate_club_graph(), 4)
        assert core.num_nodes == expected.number_of_nodes()
        assert core.num_edges == expected.number_of_edges()
        # Every node keeps degree >= 4 inside the core.
        assert all(core.degree(v) >= 4 for v in core.nodes())

    def test_k_core_empty(self):
        core, mapping = k_core(path_graph(5), 3)
        assert core.num_nodes == 0
        assert mapping == {}

    def test_k_core_negative(self, karate):
        with pytest.raises(ValueError):
            k_core(karate, -1)

    def test_degeneracy_empty(self):
        assert degeneracy(Graph(0)) == 0
        assert degeneracy(Graph(3, [])) == 0
