"""Deterministic unbiasedness checks (Eq. 4 and Eq. 7).

Instead of sampling, enumerate the *entire* expanded state space M(l) for a
small graph, weight every window by its exact stationary probability
(Theorem 2), and apply the estimator's own re-weighting code.  The
expectation

    E_pie[ h_i(X) / (alpha_i pi_e(X)) ]  =  C_i          (basic, Eq. 4)
    E_pie[ h_i(X) / p(X) ]               =  C_i          (CSS,   Eq. 7)

must equal the exact graphlet counts *exactly* (up to float rounding) —
this validates the full weighting pipeline (alpha coefficients, Theorem 2
weights, CSS templates, classification) with zero statistical noise.
"""

from __future__ import annotations

import math

import pytest

from repro.core.alpha import alpha_table
from repro.core.css import sampling_weight
from repro.core.expanded_chain import enumerate_windows, stationary_weight
from repro.exact import exact_counts
from repro.graphlets import classify_bitmask, graphlets, induced_bitmask
from repro.graphs import Graph
from repro.graphs.generators import lollipop_graph
from repro.relgraph import relationship_graph


def expectation_of_estimator(graph: Graph, k: int, d: int, css: bool):
    """Exact E[weight * indicator] per type over the full expanded chain.

    Returns estimates of C_i for every graphlet type.
    """
    l = k - d + 1
    relgraph, states = relationship_graph(graph, d)
    two_r = 2.0 * relgraph.num_edges
    alphas = alpha_table(k, d)

    if d == 1:
        def degree_of_state(state):
            return graph.degree(state[0])
    elif d == 2:
        def degree_of_state(state):
            return graph.degree(state[0]) + graph.degree(state[1]) - 2
    else:
        state_index = {s: i for i, s in enumerate(states)}

        def degree_of_state(state):
            return relgraph.degree(state_index[tuple(sorted(state))])

    estimates = [0.0] * len(alphas)
    for window in enumerate_windows(relgraph, l):
        window_states = [states[i] for i in window]
        nodes = sorted({v for s in window_states for v in s})
        if len(nodes) != k:
            continue
        mask = induced_bitmask(graph, nodes)
        type_index = classify_bitmask(mask, k)
        degrees = [relgraph.degree(i) for i in window]
        pi_e = stationary_weight(degrees) / two_r  # Theorem 2
        if css:
            weight = two_r / sampling_weight(mask, nodes, k, d, degree_of_state)
        else:
            weight = 1.0 / (alphas[type_index] * stationary_weight(degrees) / two_r)
        estimates[type_index] += pi_e * weight
    return estimates


CASES = [
    ("figure1", 3, 1, False),
    ("figure1", 3, 1, True),
    ("figure1", 3, 2, False),
    ("figure1", 4, 2, False),
    ("figure1", 4, 2, True),
    ("figure1", 4, 3, False),
    ("lollipop", 3, 1, False),
    ("lollipop", 3, 1, True),
    ("lollipop", 4, 2, False),
    ("lollipop", 4, 2, True),
    ("lollipop", 5, 2, True),
]


def build(name, figure1_graph):
    if name == "figure1":
        return figure1_graph
    return lollipop_graph(4, 3)  # asymmetric degrees: a stringent check


class TestExactUnbiasedness:
    @pytest.mark.parametrize("name,k,d,css", CASES)
    def test_expectation_equals_exact_counts(self, name, k, d, css, figure1_graph):
        graph = build(name, figure1_graph)
        truth = exact_counts(graph, k)
        estimates = expectation_of_estimator(graph, k, d, css)
        for g in graphlets(k):
            alpha = alpha_table(k, d)[g.index]
            if alpha == 0:
                assert estimates[g.index] == 0.0
                continue
            assert math.isclose(
                estimates[g.index], truth[g.index], rel_tol=1e-9, abs_tol=1e-9
            ), (g.name, estimates[g.index], truth[g.index])

    def test_karate_triangle_expectation(self, karate):
        """The same identity on a real graph (d=1, k=3: 45 triangles)."""
        estimates = expectation_of_estimator(karate, 3, 1, css=False)
        truth = exact_counts(karate, 3)
        assert math.isclose(estimates[1], truth[1], rel_tol=1e-9)
        assert math.isclose(estimates[0], truth[0], rel_tol=1e-9)

    def test_karate_css_expectation(self, karate):
        estimates = expectation_of_estimator(karate, 3, 1, css=True)
        truth = exact_counts(karate, 3)
        assert math.isclose(estimates[1], truth[1], rel_tol=1e-9)
