"""Tests for the exact Lemma 5 variance analysis."""

from __future__ import annotations

import math

import pytest

from repro.core.variance import lemma5_variances
from repro.exact import exact_counts
from repro.graphs.generators import lollipop_graph, powerlaw_cluster
from repro.graphs.components import largest_connected_component


@pytest.fixture(scope="module")
def small_clustered():
    graph = powerlaw_cluster(30, 2, 0.6, seed=5)
    lcc, _ = largest_connected_component(graph)
    return lcc


class TestLemma5:
    @pytest.mark.parametrize(
        "k,d",
        [(3, 1), (4, 2), (4, 1)],
    )
    def test_css_variance_never_larger(self, small_clustered, k, d):
        """Lemma 5, verified exactly on every reachable graphlet type."""
        reports = lemma5_variances(small_clustered, k, d)
        assert reports  # at least one reachable type
        for report in reports.values():
            assert report.css_variance <= report.basic_variance + 1e-9

    def test_both_functionals_unbiased(self, small_clustered):
        """Shared mean == exact count (Eq. 4 / Eq. 7 again, via moments)."""
        truth = exact_counts(small_clustered, 3)
        reports = lemma5_variances(small_clustered, 3, 1)
        for index, report in reports.items():
            assert math.isclose(report.mean, truth[index], rel_tol=1e-9)

    def test_variance_reduction_strict_on_irregular_graph(self):
        """On a graph with unequal degrees CSS must strictly help for the
        triangle (different corresponding states have different inclusion
        probabilities — the §4.1 motivating example)."""
        graph = lollipop_graph(4, 3)
        reports = lemma5_variances(graph, 3, 1)
        triangle = reports[1]
        assert triangle.css_variance < triangle.basic_variance
        assert 0 < triangle.variance_reduction <= 1

    def test_figure1_graph_values(self, figure1_graph):
        reports = lemma5_variances(figure1_graph, 3, 1)
        truth = exact_counts(figure1_graph, 3)
        # Two wedges, two triangles in the Figure 1 graph.
        assert math.isclose(reports[0].mean, truth[0])
        assert math.isclose(reports[1].mean, truth[1])

    def test_d3_supported(self, figure1_graph):
        reports = lemma5_variances(figure1_graph, 4, 3)
        # l = 2: CSS coincides with basic, so variances are equal.
        for report in reports.values():
            assert math.isclose(
                report.css_variance, report.basic_variance, rel_tol=1e-9
            )

    def test_variance_reduction_zero_division_guard(self, figure1_graph):
        reports = lemma5_variances(figure1_graph, 4, 3)
        for report in reports.values():
            assert 0.0 <= report.variance_reduction <= 1.0 or math.isclose(
                report.variance_reduction, 0.0, abs_tol=1e-9
            )
