"""The d >= 3 fast path: vectorized swap-frontier kernels vs the serial
:class:`~repro.relgraph.spaces.SubgraphSpace`.

Three layers of parity pin the generalized engine:

* **frontier/degree properties** — on hypothesis-generated graphs the
  vectorized candidate counts, candidate sets and degrees equal what
  ``SubgraphSpace.neighbors()`` enumerates, state by state;
* **walk parity** — a fixed seed drives :class:`BatchedWalkEngine` and a
  pure-Python per-chain reference (same variates, same canonical
  neighbor order) through identical trajectories, including NB lanes,
  forced backtracks on degree-1 states of G(3), and the initial-state
  growth;
* **estimation parity** — pooled SRW3/SRW3CSS estimates at B = 256 are
  bit-identical to the per-chain Python reference accumulators, and
  streamed d = 3 sessions reproduce the one-shot run.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MethodSpec, run_estimation
from repro.core.alpha import alpha_table
from repro.core.estimator import (
    SRWSession,
    _batched_python,
    _batched_vectorized,
    split_budget,
)
from repro.graphs import CSRGraph, Graph
from repro.graphs.generators import barabasi_albert, complete_graph, path_graph
from repro.relgraph import enumerate_states
from repro.relgraph.spaces import SubgraphSpace, WalkSpaceError
from repro.relgraph.vectorized import VectorSubgraphSpace, _uniform_neighbor
from repro.walks import BatchedWalkEngine, state_degrees


def random_graphs(min_nodes=4, max_nodes=12):
    """Hypothesis strategy: small random Graph instances."""
    return st.integers(min_value=min_nodes, max_value=max_nodes).flatmap(
        lambda n: st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=4 * n,
        ).map(lambda edges: Graph(n, edges))
    )


def canonical_neighbors(graph, state):
    """G(d) neighbors in the engine's canonical order: swap-out position
    ascending, then swap-in node id ascending (brute-force connectivity,
    independent of both implementations under test)."""
    d = len(state)
    state_set = set(state)
    result = []
    for j in range(d):
        remainder = [state[p] for p in range(d) if p != j]
        candidates = sorted(
            {int(w) for u in remainder for w in graph.neighbors(u)} - state_set
        )
        for w in candidates:
            nodes = remainder + [w]
            node_set = set(nodes)
            stack, seen = [nodes[0]], {nodes[0]}
            while stack:
                x = stack.pop()
                for y in graph.neighbors(x):
                    y = int(y)
                    if y in node_set and y not in seen:
                        seen.add(y)
                        stack.append(y)
            if len(seen) == d:
                result.append(tuple(sorted(nodes)))
    return result


class ReferenceEngine:
    """Per-chain Python mirror of the batched d >= 3 engine.

    Consumes the *same* ``numpy`` Generator stream — one ``random(B)``
    vector per growth step / transition — and resolves each lane's draw
    against the canonical neighbor order, so a fixed seed must reproduce
    :class:`BatchedWalkEngine` exactly, state for state.
    """

    def __init__(self, graph, d, chains, rng, seed_node=0, nb=False):
        self.graph = graph
        self.d = d
        self.chains = chains
        self.rng = rng
        self.nb = nb
        grown = [[seed_node] for _ in range(chains)]
        for _ in range(d - 1):
            u = rng.random(chains)
            for b in range(chains):
                nodes = grown[b]
                members = set(nodes)
                frontier = [
                    int(w)
                    for x in nodes
                    for w in graph.neighbors(x)
                    if int(w) not in members
                ]
                r = min(int(u[b] * len(frontier)), len(frontier) - 1)
                nodes.append(frontier[r])
        self.cur = [tuple(sorted(nodes)) for nodes in grown]
        self.prev = None

    def states(self):
        return np.asarray(self.cur, dtype=np.int64)

    def step(self):
        u = self.rng.random(self.chains)
        nxt = []
        for b in range(self.chains):
            neighbors = canonical_neighbors(self.graph, self.cur[b])
            deg = len(neighbors)
            if self.nb and self.prev is not None:
                if deg <= 1:
                    nxt.append(self.prev[b])
                    continue
                back_rank = neighbors.index(self.prev[b])
                r = min(int(u[b] * (deg - 1)), deg - 2)
                if r >= back_rank:
                    r += 1
                nxt.append(neighbors[r])
            else:
                assert deg > 0
                nxt.append(neighbors[min(int(u[b] * deg), deg - 1)])
        self.prev = self.cur
        self.cur = nxt
        return self.states()


class TestFrontierProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_frontier_matches_subgraph_space(self, g):
        """Counts, candidate sets and degrees of the vectorized frontier
        equal SubgraphSpace.neighbors() on every G(3)/G(4) state."""
        csr = CSRGraph.from_graph(g)
        for d in (3, 4):
            states = enumerate_states(g, d)
            if not states:
                continue
            space = SubgraphSpace(d)
            vec = VectorSubgraphSpace(d)
            arr = np.asarray(states, dtype=np.int64)
            counts, cand_w, cand_seg = vec.frontier(csr, arr)
            degrees = vec.degrees(csr, arr)
            flat_counts = counts.reshape(-1)
            offsets = np.cumsum(flat_counts) - flat_counts
            for i, state in enumerate(states):
                serial = space.neighbors(g, state)
                assert len(serial) == int(counts[i].sum()) == int(degrees[i])
                rebuilt = []
                for j in range(d):
                    seg = i * d + j
                    remainder = [u for u in state if u != state[j]]
                    for w in cand_w[offsets[seg] : offsets[seg] + counts[i, j]]:
                        rebuilt.append(tuple(sorted(remainder + [int(w)])))
                assert rebuilt == canonical_neighbors(g, state)
                assert set(rebuilt) == set(serial)

    @settings(max_examples=25, deadline=None)
    @given(random_graphs(min_nodes=5, max_nodes=10))
    def test_state_degrees_match_serial(self, g):
        """windows.state_degrees (the CSS degree_fn surface) equals the
        serial space degree, nominal variant included."""
        csr = CSRGraph.from_graph(g)
        d = 3
        states = enumerate_states(g, d)
        if not states:
            return
        space = SubgraphSpace(d)
        arr = np.asarray(states, dtype=np.int64).reshape(-1, 1, d)  # odd shape
        plain = state_degrees(csr, arr, d)
        nominal = state_degrees(csr, arr, d, nominal=True)
        for i, state in enumerate(states):
            expected = space.degree(g, state)
            assert int(plain[i, 0]) == expected
            assert int(nominal[i, 0]) == max(expected - 1, 1)


class _ConstantUniform:
    """An rng stub whose ``random(n)`` returns a fixed value — drives the
    index-draw kernels through the exact float edge a real Generator
    reaches with probability ~2**-53."""

    def __init__(self, value: float):
        self.value = value

    def random(self, n: int) -> np.ndarray:
        return np.full(n, self.value)


class TestIndexDrawSafety:
    """Regression pins for the ``floor(U * count)`` index draws.

    ``U * count`` can round up to ``count`` itself at the top of the
    unit interval; unclipped, that reads one slot past the segment (the
    next CSR row / the next lane's candidates).  And a zero-count row
    must raise, not silently gather a neighboring row's data.
    """

    def test_uniform_neighbor_clips_the_top_of_the_unit_interval(self):
        csr = CSRGraph.from_graph(barabasi_albert(50, 3, seed=4))
        nodes = np.arange(50, dtype=np.int64)
        last = _uniform_neighbor(csr, nodes, _ConstantUniform(1.0))
        expected = csr.indices[csr.indptr[nodes] + csr.degrees_array[nodes] - 1]
        assert np.array_equal(last, expected)
        first = _uniform_neighbor(csr, nodes, _ConstantUniform(0.0))
        assert np.array_equal(first, csr.indices[csr.indptr[nodes]])

    def test_uniform_neighbor_raises_on_isolated_nodes(self):
        # Node 4 is isolated; without the zero-degree guard the clipped
        # offset (-1) would gather the previous row's last neighbor.
        csr = CSRGraph.from_graph(Graph(5, [(0, 1), (1, 2), (2, 3)]))
        rng = np.random.default_rng(0)
        with pytest.raises(WalkSpaceError, match="node 4 is isolated"):
            _uniform_neighbor(csr, np.array([0, 4, 2]), rng)

    def test_propose_clips_rank_at_degree(self):
        # U == 1.0 on every lane must select the *last* canonical
        # neighbor, never rank == degree (an out-of-segment read).
        g = barabasi_albert(40, 3, seed=6)
        csr = CSRGraph.from_graph(g)
        vec = VectorSubgraphSpace(3)
        states = vec.initial(csr, np.random.default_rng(3), np.arange(8))
        nxt = vec.propose(csr, states, _ConstantUniform(1.0))
        for row, out in zip(states, nxt):
            assert tuple(out) == canonical_neighbors(g, tuple(row))[-1]

    def test_initial_growth_clips_frontier_rank(self):
        # Same edge in the multiset-frontier growth draw.
        csr = CSRGraph.from_graph(barabasi_albert(40, 3, seed=6))
        vec = VectorSubgraphSpace(3)
        states = vec.initial(csr, _ConstantUniform(1.0), np.arange(8))
        degs = csr.degrees_array
        assert np.all(degs[states.reshape(-1)] > 0)
        assert np.all(states[:, :-1] < states[:, 1:])  # sorted, distinct

    def test_block_draw_order_matches_per_step_draws(self):
        # The blocked kernel pre-draws a (T, B) C-order matrix; it must
        # equal T successive per-step random(B) calls draw for draw —
        # the invariant the fused path's bit-identity rests on.
        block = np.random.default_rng(11).random((5, 7))
        rng = np.random.default_rng(11)
        assert np.array_equal(block, np.vstack([rng.random(7) for _ in range(5)]))

    def test_propose_with_predrawn_uniforms_matches_internal_draw(self):
        csr = CSRGraph.from_graph(barabasi_albert(60, 3, seed=8))
        vec = VectorSubgraphSpace(3)
        states = vec.initial(csr, np.random.default_rng(1), np.arange(16))
        u = np.random.default_rng(2).random(16)
        a = vec.propose(csr, states, None, u=u)
        b = vec.propose(csr, states, _ConstantUniform(np.nan), u=u)  # rng unused
        c = vec.propose(csr, states, np.random.default_rng(2))
        assert np.array_equal(a, b)
        assert np.array_equal(a, c)


class TestWalkParity:
    @pytest.mark.parametrize("d,nb", [(3, False), (3, True), (4, False), (4, True)])
    def test_fixed_seed_matches_reference(self, d, nb):
        g = barabasi_albert(80, 3, seed=2)
        csr = CSRGraph.from_graph(g)
        engine = BatchedWalkEngine(
            csr, d, 8, np.random.default_rng(7), seed_node=1, non_backtracking=nb
        )
        reference = ReferenceEngine(
            csr, d, 8, np.random.default_rng(7), seed_node=1, nb=nb
        )
        assert np.array_equal(engine.states(), reference.states())
        for _ in range(40):
            assert np.array_equal(engine.step(), reference.step())

    def test_degree1_states_force_backtrack(self):
        # On the path 0-1-2-3, G(3) has exactly two states, each other's
        # only neighbor: plain SRW alternates, NB-SRW's forced-backtrack
        # rule (§4.2) fires every step, and neither may spin or diverge.
        csr = CSRGraph.from_graph(path_graph(4))
        for nb in (False, True):
            engine = BatchedWalkEngine(
                csr, 3, 4, np.random.default_rng(0), non_backtracking=nb
            )
            a = engine.states().copy()
            b = engine.step().copy()
            assert sorted(map(tuple, {tuple(r) for r in np.vstack([a, b])})) == [
                (0, 1, 2),
                (1, 2, 3),
            ]
            for _ in range(12):
                nxt = engine.step().copy()
                assert np.array_equal(nxt, a)
                a, b = b, nxt

    def test_stuck_state_raises_like_serial(self):
        # A component of exactly d nodes has a G(d) state with no
        # neighbors; the serial space raises, so must the engine.
        csr = CSRGraph.from_graph(complete_graph(3))
        engine = BatchedWalkEngine(csr, 3, 2, np.random.default_rng(1))
        with pytest.raises(WalkSpaceError, match="no G"):
            engine.step()

    def test_initial_growth_failure_raises(self):
        # Seed in a 2-node component cannot grow a connected 3-subgraph.
        csr = CSRGraph.from_graph(Graph(5, [(0, 1), (2, 3), (3, 4)]))
        with pytest.raises(WalkSpaceError, match="cannot grow"):
            BatchedWalkEngine(csr, 3, 2, np.random.default_rng(2), seed_node=0)


class TestEstimationParity:
    @pytest.mark.parametrize("method,k", [("SRW3", 4), ("SRW3CSS", 5)])
    def test_b256_pooled_bit_identity(self, karate, method, k):
        """Full batch width: the vectorized pipeline's pooled sums equal
        the per-chain Python reference accumulators bit for bit."""
        csr = CSRGraph.from_graph(karate)
        spec = MethodSpec.parse(method, k)
        budget = 2_560
        budgets = split_budget(budget, 256)
        alphas = alpha_table(spec.k, spec.d)
        engines = [
            BatchedWalkEngine(csr, spec.d, 256, np.random.default_rng(13))
            for _ in range(2)
        ]
        s_ref, c_ref, v_ref = _batched_python(
            csr, spec, alphas, budgets, engines[0], 0
        )
        s_vec, c_vec, v_vec = _batched_vectorized(
            csr, spec, alphas, budgets, engines[1], 0
        )
        assert np.array_equal(s_ref, s_vec)
        assert np.array_equal(c_ref, c_vec)
        assert v_ref == v_vec

    def test_streamed_d3_session_matches_one_shot(self, karate):
        """Multi-chain d = 3 sessions stream through the vectorized
        accumulator; ragged step sizes must not change the sums."""
        csr = CSRGraph.from_graph(karate)
        spec = MethodSpec.parse("SRW3", 4)
        one = run_estimation(csr, spec, 5_003, rng=random.Random(5), chains=3)
        session = SRWSession(csr, spec, 5_003, rng=random.Random(5), chains=3)
        while session.step(271):
            pass
        streamed = session.result()
        assert np.array_equal(one.sums, streamed.sums)
        assert np.array_equal(one.sample_counts, streamed.sample_counts)
        assert one.samples == streamed.samples
        assert streamed.stderr is not None

    def test_estimate_rides_fast_path_end_to_end(self, karate):
        """repro.estimate(graph, "srw3css", backend="csr", chains=B) —
        the registry adapter, session and engine all generalized."""
        import repro

        result = repro.estimate(
            karate, "srw3css", budget=4_096, seed=3, backend="csr", chains=64
        )
        assert result.method == "SRW3CSS"
        assert result.chains == 64
        assert result.k == 5
        total = float(np.nansum(result.concentrations))
        assert abs(total - 1.0) < 1e-9