"""Tests for the random-walk steppers and the MH walk."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.graphs import Graph
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.relgraph import EdgeSpace, NodeSpace, SubgraphSpace
from repro.walks import (
    MetropolisHastingsWalk,
    NonBacktrackingWalk,
    SimpleWalk,
    make_walk,
    uniform_weight,
    wedge_weight,
)


class TestSimpleWalk:
    def test_stationary_distribution_degree_proportional(self, karate):
        """Long SRW visit frequencies converge to pi(v) = d_v / 2|E|."""
        walk = SimpleWalk(karate, NodeSpace(), rng=random.Random(0), seed_node=0)
        visits = Counter()
        for state in walk.walk(60_000):
            visits[state[0]] += 1
        two_m = 2 * karate.num_edges
        for v in karate.nodes():
            expected = karate.degree(v) / two_m
            observed = visits[v] / 60_000
            assert abs(observed - expected) < 0.25 * expected + 0.002

    def test_walk_stays_on_edges(self, karate):
        walk = SimpleWalk(karate, NodeSpace(), rng=random.Random(1), seed_node=0)
        prev = walk.state[0]
        for state in walk.walk(200):
            assert karate.has_edge(prev, state[0])
            prev = state[0]

    def test_edge_space_walk_valid(self, karate):
        walk = SimpleWalk(karate, EdgeSpace(), rng=random.Random(2), seed_node=0)
        for state in walk.walk(200):
            assert karate.has_edge(*state)

    def test_subgraph_space_walk_connected(self, karate):
        walk = SimpleWalk(karate, SubgraphSpace(3), rng=random.Random(3), seed_node=0)
        for state in walk.walk(30):
            assert karate.is_connected_subset(state)

    def test_steps_counter(self, karate):
        walk = SimpleWalk(karate, NodeSpace(), rng=random.Random(4))
        list(walk.walk(17))
        assert walk.steps_taken == 17

    def test_state_degree(self, figure1_graph):
        walk = SimpleWalk(figure1_graph, NodeSpace(), rng=random.Random(5), seed_node=0)
        assert walk.state_degree() == figure1_graph.degree(0)


class TestNonBacktrackingWalk:
    def test_never_backtracks_on_cycle(self):
        """On a cycle every node has degree 2: NB walk must go around,
        never reversing."""
        g = cycle_graph(10)
        walk = NonBacktrackingWalk(g, NodeSpace(), rng=random.Random(0), seed_node=0)
        states = [walk.state] + list(walk.walk(50))
        for i in range(2, len(states)):
            assert states[i] != states[i - 2], "backtracked despite alternatives"

    def test_forced_backtrack_on_leaf(self):
        """At a degree-1 state the only move is back (P' third case)."""
        g = path_graph(2)  # leaf-leaf: every step is a forced backtrack
        walk = NonBacktrackingWalk(g, NodeSpace(), rng=random.Random(1), seed_node=0)
        states = [s[0] for s in walk.walk(6)]
        assert states == [1, 0, 1, 0, 1, 0]

    def test_star_alternates_through_center(self):
        g = star_graph(5)
        walk = NonBacktrackingWalk(g, NodeSpace(), rng=random.Random(2), seed_node=1)
        prev = walk.state
        for state in walk.walk(40):
            # From a leaf the walk must go to the center; from the center it
            # must avoid the leaf it came from.
            if prev != (0,):
                assert state == (0,)
            else:
                assert state != prev
            prev = state

    def test_preserves_stationary_distribution(self, karate):
        """NB-SRW preserves pi(v) = d_v / 2|E| (§4.2)."""
        walk = NonBacktrackingWalk(karate, NodeSpace(), rng=random.Random(3), seed_node=0)
        visits = Counter()
        for state in walk.walk(60_000):
            visits[state[0]] += 1
        two_m = 2 * karate.num_edges
        for v in karate.nodes():
            expected = karate.degree(v) / two_m
            observed = visits[v] / 60_000
            assert abs(observed - expected) < 0.25 * expected + 0.002

    def test_nb_on_edge_space(self, karate):
        walk = NonBacktrackingWalk(karate, EdgeSpace(), rng=random.Random(4), seed_node=0)
        states = [walk.state] + list(walk.walk(60))
        for i in range(2, len(states)):
            if EdgeSpace().degree(karate, states[i - 1]) > 1:
                assert states[i] != states[i - 2]

    def test_nb_on_subgraph_space(self, karate):
        walk = NonBacktrackingWalk(karate, SubgraphSpace(3), rng=random.Random(5), seed_node=0)
        states = [walk.state] + list(walk.walk(20))
        for i in range(2, len(states)):
            if SubgraphSpace(3).degree(karate, states[i - 1]) > 1:
                assert states[i] != states[i - 2]

    def test_factory(self, karate):
        assert isinstance(make_walk(karate, NodeSpace()), SimpleWalk)
        assert isinstance(
            make_walk(karate, NodeSpace(), non_backtracking=True),
            NonBacktrackingWalk,
        )


class TestMetropolisHastings:
    def test_wedge_weight_values(self):
        assert wedge_weight(4) == 6
        assert uniform_weight(100) == 1.0

    def test_isolated_seed_rejected(self):
        with pytest.raises(ValueError):
            MetropolisHastingsWalk(Graph(2, []), seed_node=0)

    def test_uniform_target_visits_uniformly(self, karate):
        """MHRW with uniform weight corrects the degree bias of the SRW."""
        walk = MetropolisHastingsWalk(
            karate, weight=uniform_weight, rng=random.Random(0), seed_node=0
        )
        visits = Counter(walk.walk(80_000))
        frequencies = [visits[v] / 80_000 for v in karate.nodes()]
        expected = 1 / karate.num_nodes
        for f in frequencies:
            assert abs(f - expected) < 0.5 * expected

    def test_wedge_target_visits_proportional(self, karate):
        """Algorithm 4's walk targets pi(v) ~ C(d_v, 2)."""
        walk = MetropolisHastingsWalk(
            karate, weight=wedge_weight, rng=random.Random(1), seed_node=0
        )
        visits = Counter(walk.walk(80_000))
        total_weight = sum(wedge_weight(d) for d in karate.degrees())
        hubs = sorted(karate.nodes(), key=karate.degree, reverse=True)[:5]
        for v in hubs:
            expected = wedge_weight(karate.degree(v)) / total_weight
            observed = visits[v] / 80_000
            assert abs(observed - expected) < 0.25 * expected

    def test_acceptance_rate_tracked(self, karate):
        walk = MetropolisHastingsWalk(karate, rng=random.Random(2), seed_node=0)
        list(walk.walk(500))
        assert 0.0 < walk.acceptance_rate <= 1.0
